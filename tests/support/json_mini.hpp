#pragma once
// Minimal recursive-descent JSON reader shared by the obs tests — just
// enough to parse the tracer/report emitters' own output: objects, arrays,
// strings with simple escapes, and doubles. Factored out of test_obs.cpp
// so the integration tests and the trace validator reuse one parser.

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rshc::testsupport {

struct JsonValue {
  enum class Kind { kNull, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    static const JsonValue null_value;
    const auto it = object.find(key);
    return it != object.end() ? it->second : null_value;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return object.find(key) != object.end();
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text)
      : owned_(std::move(text)), text_(owned_) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  void fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    pos_ = text_.size();  // unwind
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == '-' || (std::isdigit(static_cast<unsigned char>(c)) != 0)) {
      return parse_number();
    }
    fail("unexpected character");
    return {};
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (!consume('{')) fail("expected '{'");
    if (consume('}')) return v;
    do {
      JsonValue key = parse_string();
      if (!consume(':')) fail("expected ':'");
      v.object.emplace(key.string, parse_value());
    } while (consume(','));
    if (!consume('}')) fail("expected '}'");
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (!consume('[')) fail("expected '['");
    if (consume(']')) return v;
    do {
      v.array.push_back(parse_value());
    } while (consume(','));
    if (!consume(']')) fail("expected ']'");
    return v;
  }

  JsonValue parse_string() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    if (!consume('"')) fail("expected '\"'");
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        c = esc == 'n' ? '\n' : esc == 't' ? '\t' : esc;
      }
      v.string.push_back(c);
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    } else {
      ++pos_;  // closing quote
    }
    return v;
  }

  JsonValue parse_number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    v.number = std::strtod(begin, &end);
    if (end == begin) fail("bad number");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  std::string owned_;
  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace rshc::testsupport
