// Integration tests of the SRHD finite-volume solver: conservation,
// accuracy against exact solutions, and bit-equivalence of every execution
// mode (serial / bulk-synchronous / dataflow / multi-block).

#include <gtest/gtest.h>

#include <cmath>

#include "rshc/analysis/exact_riemann.hpp"
#include "rshc/common/math.hpp"
#include "rshc/analysis/norms.hpp"
#include "rshc/parallel/thread_pool.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace {

using namespace rshc;
using solver::SrhdSolver;

SrhdSolver::Options periodic_opts() {
  SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  return opt;
}

TEST(SrhdSolver, StaticGasStaysStatic) {
  const mesh::Grid g = mesh::Grid::make_1d(32, 0.0, 1.0);
  SrhdSolver s(g, periodic_opts());
  s.initialize([](double, double, double) {
    return srhd::Prim{1.0, 0.0, 0.0, 0.0, 1.0};
  });
  for (int i = 0; i < 10; ++i) s.step(0.005);
  const auto rho = s.gather_prim_var(srhd::kRho);
  for (const double r : rho) EXPECT_NEAR(r, 1.0, 1e-12);
  EXPECT_NEAR(s.time(), 0.05, 1e-14);
}

TEST(SrhdSolver, PeriodicAdvectionConservesExactly) {
  const mesh::Grid g = mesh::Grid::make_1d(64, 0.0, 1.0);
  SrhdSolver s(g, periodic_opts());
  s.initialize(problems::smooth_wave_ic({}));
  const auto before = s.total_cons();
  for (int i = 0; i < 50; ++i) s.step(s.compute_dt());
  const auto after = s.total_cons();
  EXPECT_NEAR(after.d, before.d, 1e-12 * std::abs(before.d));
  EXPECT_NEAR(after.sx, before.sx, 1e-12 * std::abs(before.sx));
  EXPECT_NEAR(after.tau, before.tau, 1e-11 * std::abs(before.tau));
}

TEST(SrhdSolver, SmoothWaveAdvectsAtTheRightSpeed) {
  const problems::SmoothWave wave{};
  const mesh::Grid g = mesh::Grid::make_1d(128, 0.0, 1.0);
  auto opt = periodic_opts();
  opt.recon = recon::Method::kWENO5;
  SrhdSolver s(g, opt);
  s.initialize(problems::smooth_wave_ic(wave));
  const double t_end = 0.4;
  s.advance_to(t_end);
  const auto rho = s.gather_prim_var(srhd::kRho);
  std::vector<double> exact(rho.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    exact[i] = problems::smooth_wave_exact_rho(
        wave, g.cell_center(0, static_cast<long long>(i)), s.time());
  }
  EXPECT_LT(analysis::l1_error(rho, exact), 2e-5);
}

TEST(SrhdSolver, HigherResolutionReducesError) {
  const problems::SmoothWave wave{};
  auto run = [&](long long n) {
    const mesh::Grid g = mesh::Grid::make_1d(n, 0.0, 1.0);
    auto opt = periodic_opts();
    opt.recon = recon::Method::kPLMMC;
    SrhdSolver s(g, opt);
    s.initialize(problems::smooth_wave_ic(wave));
    s.advance_to(0.2);
    const auto rho = s.gather_prim_var(srhd::kRho);
    std::vector<double> exact(rho.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      exact[i] = problems::smooth_wave_exact_rho(
          wave, g.cell_center(0, static_cast<long long>(i)), s.time());
    }
    return analysis::l1_error(rho, exact);
  };
  const double e32 = run(32);
  const double e64 = run(64);
  const double e128 = run(128);
  EXPECT_GT(analysis::convergence_order(e32, e64), 1.5);
  EXPECT_GT(analysis::convergence_order(e64, e128), 1.5);
}

TEST(SrhdSolver, ShockTubeMatchesExactSolution) {
  const problems::ShockTube st = problems::marti_muller_1();
  const mesh::Grid g = mesh::Grid::make_1d(200, 0.0, 1.0);
  SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(st.gamma);
  opt.physics.riemann = riemann::Solver::kHLLC;
  SrhdSolver s(g, opt);
  s.initialize(problems::shock_tube_ic(st));
  s.advance_to(st.t_final);

  const analysis::ExactRiemann exact({st.left.rho, st.left.vx, st.left.p},
                                     {st.right.rho, st.right.vx, st.right.p},
                                     st.gamma);
  const auto rho = s.gather_prim_var(srhd::kRho);
  std::vector<double> ref(rho.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref[i] = exact
                 .sample((g.cell_center(0, static_cast<long long>(i)) -
                          st.x_split) /
                         st.t_final)
                 .rho;
  }
  EXPECT_LT(analysis::l1_error(rho, ref), 0.12);
  EXPECT_EQ(s.c2p_stats().floored_zones, 0);
}

// Golden regression: a fixed 64-zone Sod tube run to t_final must land on
// the committed reference L1 norms to near machine precision. Catches any
// unintended change to the numerics (reconstruction, Riemann solver, RK
// update, con2prim) that the physics-based tolerances above are too loose
// to see. Regenerate the constants only for a *deliberate* scheme change
// (print the three norms at %.17g from the same configuration).
TEST(SrhdSolver, SodTubeGoldenRegression) {
  const problems::ShockTube st = problems::sod();
  const mesh::Grid g = mesh::Grid::make_1d(64, 0.0, 1.0);
  SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(st.gamma);
  SrhdSolver s(g, opt);
  s.initialize(problems::shock_tube_ic(st));
  const int steps = s.advance_to(st.t_final);

  auto l1_norm = [&s](int v) {
    const auto q = s.gather_prim_var(v);
    double sum = 0.0;
    for (const double x : q) sum += std::abs(x);
    return sum / static_cast<double>(q.size());
  };

  EXPECT_EQ(steps, 45);
  EXPECT_NEAR(s.time(), 0.34999999999999998, 1e-15);
  EXPECT_NEAR(l1_norm(srhd::kRho), 0.54785385701791078, 1e-12);
  EXPECT_NEAR(l1_norm(srhd::kVx), 0.16503998510132389, 1e-12);
  EXPECT_NEAR(l1_norm(srhd::kP), 0.50847999696324442, 1e-12);
}

TEST(SrhdSolver, ReflectingWallsConserveMass) {
  const mesh::Grid g = mesh::Grid::make_1d(64, 0.0, 1.0);
  SrhdSolver::Options opt = periodic_opts();
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kReflect);
  SrhdSolver s(g, opt);
  // Gas sloshing against the walls.
  s.initialize([](double x, double, double) {
    return srhd::Prim{1.0, 0.3 * std::sin(M_PI * x), 0.0, 0.0, 1.0};
  });
  const double mass0 = s.total_cons().d;
  for (int i = 0; i < 40; ++i) s.step(s.compute_dt());
  EXPECT_NEAR(s.total_cons().d, mass0, 1e-11 * mass0);
}

// --- execution-mode equivalence ---------------------------------------------

std::vector<double> run_mode(int blocks_x, int blocks_y, int mode,
                             int threads) {
  const mesh::Grid g = mesh::Grid::make_2d(24, 24, 0.0, 1.0, 0.0, 1.0);
  auto opt = periodic_opts();
  opt.blocks = {blocks_x, blocks_y, 1};
  SrhdSolver s(g, opt);
  s.initialize([](double x, double y, double) {
    srhd::Prim w;
    w.rho = 1.0 + 0.4 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
    w.vx = 0.3;
    w.vy = -0.2;
    w.p = 1.0;
    return w;
  });
  parallel::ThreadPool pool(static_cast<unsigned>(threads));
  const double dt = 0.004;
  for (int i = 0; i < 12; ++i) {
    switch (mode) {
      case 0: s.step(dt); break;
      case 1: s.step_parallel(dt, pool, /*dataflow=*/false); break;
      case 2: s.step_parallel(dt, pool, /*dataflow=*/true); break;
      default: break;
    }
  }
  return s.gather_prim_var(srhd::kRho);
}

TEST(SrhdSolverModes, BulkSyncMatchesSerialBitwise) {
  const auto serial = run_mode(2, 2, 0, 1);
  const auto bulk = run_mode(2, 2, 1, 3);
  ASSERT_EQ(serial.size(), bulk.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], bulk[i]) << "cell " << i;
  }
}

TEST(SrhdSolverModes, DataflowMatchesSerialBitwise) {
  const auto serial = run_mode(2, 2, 0, 1);
  const auto flow = run_mode(2, 2, 2, 3);
  ASSERT_EQ(serial.size(), flow.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], flow[i]) << "cell " << i;
  }
}

TEST(SrhdSolverModes, BlockCountDoesNotChangeTheAnswer) {
  const auto one = run_mode(1, 1, 0, 1);
  const auto many = run_mode(3, 2, 0, 1);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_NEAR(one[i], many[i], 1e-13) << "cell " << i;
  }
}

TEST(SrhdSolverModes, MultiStepDataflowGraphMatchesStepwise) {
  const mesh::Grid g = mesh::Grid::make_2d(16, 16, 0.0, 1.0, 0.0, 1.0);
  auto opt = periodic_opts();
  opt.blocks = {2, 2, 1};
  auto ic = [](double x, double y, double) {
    return srhd::Prim{1.0 + 0.3 * std::sin(2 * M_PI * (x + y)), 0.25, 0.1,
                      0.0, 1.0};
  };
  parallel::ThreadPool pool(2);
  SrhdSolver a(g, opt);
  a.initialize(ic);
  a.run_steps_dataflow(6, 0.005, pool);

  SrhdSolver b(g, opt);
  b.initialize(ic);
  for (int i = 0; i < 6; ++i) b.step(0.005);

  const auto ra = a.gather_prim_var(srhd::kRho);
  const auto rb = b.gather_prim_var(srhd::kRho);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i], rb[i]) << "cell " << i;
  }
  EXPECT_NEAR(a.time(), b.time(), 1e-15);
}

TEST(SrhdSolver, TwoDimensionalConservation) {
  const mesh::Grid g = mesh::Grid::make_2d(20, 20, 0.0, 1.0, 0.0, 1.0);
  auto opt = periodic_opts();
  opt.blocks = {2, 2, 1};
  SrhdSolver s(g, opt);
  s.initialize([](double x, double y, double) {
    srhd::Prim w;
    w.rho = 1.0 + 0.5 * std::exp(-50.0 * (rshc::sq(x - 0.5) + rshc::sq(y - 0.5)));
    w.p = 1.0;
    w.vx = 0.2;
    return w;
  });
  const auto before = s.total_cons();
  for (int i = 0; i < 20; ++i) s.step(s.compute_dt());
  const auto after = s.total_cons();
  EXPECT_NEAR(after.d, before.d, 1e-11 * before.d);
  EXPECT_NEAR(after.tau, before.tau, 1e-10 * std::abs(before.tau));
}

TEST(SrhdSolver, ComputeDtScalesWithResolution) {
  auto opt = periodic_opts();
  const mesh::Grid g1 = mesh::Grid::make_1d(32, 0.0, 1.0);
  const mesh::Grid g2 = mesh::Grid::make_1d(64, 0.0, 1.0);
  SrhdSolver s1(g1, opt);
  SrhdSolver s2(g2, opt);
  const auto ic = problems::smooth_wave_ic({});
  s1.initialize(ic);
  s2.initialize(ic);
  EXPECT_NEAR(s1.compute_dt() / s2.compute_dt(), 2.0, 0.05);
}

TEST(SrhdSolver, PrimAtReadsTheRightCell) {
  const mesh::Grid g = mesh::Grid::make_2d(8, 8, 0.0, 1.0, 0.0, 1.0);
  auto opt = periodic_opts();
  opt.blocks = {2, 2, 1};
  SrhdSolver s(g, opt);
  s.initialize([](double x, double y, double) {
    return srhd::Prim{1.0 + x + 10.0 * y, 0.0, 0.0, 0.0, 1.0};
  });
  const auto p = s.prim_at(5, 6);
  EXPECT_NEAR(p.rho, 1.0 + g.cell_center(0, 5) + 10.0 * g.cell_center(1, 6),
              1e-13);
  EXPECT_THROW((void)s.prim_at(100, 0), Error);
}

TEST(SrhdSolver, RejectsBlocksSmallerThanStencil) {
  const mesh::Grid g = mesh::Grid::make_1d(8, 0.0, 1.0);
  auto opt = periodic_opts();
  opt.recon = recon::Method::kWENO5;  // ghost width 3
  opt.blocks = {4, 1, 1};             // 2 cells per block < 3
  EXPECT_THROW(SrhdSolver(g, opt), Error);
}

}  // namespace
