// SRHD physics: prim<->cons maps, fluxes, characteristic speeds, and the
// con2prim root solver (roundtrip property sweep up to Lorentz factor 50).

#include <gtest/gtest.h>

#include <cmath>

#include "rshc/srhd/con2prim.hpp"
#include "rshc/srhd/state.hpp"

namespace {

using namespace rshc;
using srhd::Cons;
using srhd::Prim;

const eos::IdealGas kEos(5.0 / 3.0);

TEST(SrhdState, ConsOfStaticGasIsRestFrame) {
  const Prim w{2.0, 0.0, 0.0, 0.0, 1.5};
  const Cons u = srhd::prim_to_cons(w, kEos);
  EXPECT_DOUBLE_EQ(u.d, 2.0);
  EXPECT_DOUBLE_EQ(u.sx, 0.0);
  EXPECT_DOUBLE_EQ(u.sy, 0.0);
  EXPECT_DOUBLE_EQ(u.sz, 0.0);
  // tau = rho h - p - rho = rho eps + ... for static gas: tau = rho eps.
  const double eps = kEos.specific_internal_energy(2.0, 1.5);
  EXPECT_NEAR(u.tau, 2.0 * eps, 1e-13);
}

TEST(SrhdState, LorentzFactorMatchesVelocity) {
  Prim w;
  w.vx = 0.6;
  w.vy = 0.0;
  w.vz = 0.0;
  EXPECT_NEAR(w.lorentz(), 1.25, 1e-14);
  w.vy = 0.6;
  EXPECT_NEAR(w.lorentz(), 1.0 / std::sqrt(1.0 - 0.72), 1e-14);
}

TEST(SrhdState, EnergyFluxIdentity) {
  // F(tau) = S_d - D v_d must hold for every axis and state.
  const Prim w{1.3, 0.4, -0.2, 0.1, 0.9};
  const Cons u = srhd::prim_to_cons(w, kEos);
  for (int axis = 0; axis < 3; ++axis) {
    const Cons f = srhd::flux(w, u, axis);
    EXPECT_NEAR(f.tau, u.s(axis) - u.d * w.v(axis), 1e-13);
    EXPECT_NEAR(f.d, u.d * w.v(axis), 1e-13);
  }
}

TEST(SrhdState, MomentumFluxCarriesPressureOnDiagonal) {
  const Prim w{1.0, 0.0, 0.0, 0.0, 2.5};
  const Cons u = srhd::prim_to_cons(w, kEos);
  const Cons fx = srhd::flux(w, u, 0);
  EXPECT_DOUBLE_EQ(fx.sx, 2.5);
  EXPECT_DOUBLE_EQ(fx.sy, 0.0);
  const Cons fy = srhd::flux(w, u, 1);
  EXPECT_DOUBLE_EQ(fy.sy, 2.5);
  EXPECT_DOUBLE_EQ(fy.sx, 0.0);
}

TEST(SrhdState, SignalSpeedsReduceToSoundSpeedAtRest) {
  const Prim w{1.0, 0.0, 0.0, 0.0, 1.0};
  const auto s = srhd::signal_speeds(w, 0, kEos);
  const double cs = kEos.sound_speed(1.0, 1.0);
  EXPECT_NEAR(s.lambda_plus, cs, 1e-13);
  EXPECT_NEAR(s.lambda_minus, -cs, 1e-13);
}

TEST(SrhdState, SignalSpeedsUseRelativisticAddition1d) {
  // Pure 1D flow: lambda = (v +- cs) / (1 +- v cs).
  const Prim w{1.0, 0.7, 0.0, 0.0, 0.1};
  const double cs = kEos.sound_speed(1.0, 0.1);
  const auto s = srhd::signal_speeds(w, 0, kEos);
  EXPECT_NEAR(s.lambda_plus, (0.7 + cs) / (1.0 + 0.7 * cs), 1e-12);
  EXPECT_NEAR(s.lambda_minus, (0.7 - cs) / (1.0 - 0.7 * cs), 1e-12);
}

TEST(SrhdState, SignalSpeedsAreCausal) {
  for (const double v : {0.0, 0.5, 0.9, 0.999}) {
    for (const double p : {1e-8, 1.0, 1e6}) {
      const Prim w{1.0, v, 0.3 * std::sqrt(1 - v * v), 0.0, p};
      for (int axis = 0; axis < 3; ++axis) {
        const auto s = srhd::signal_speeds(w, axis, kEos);
        EXPECT_LT(std::abs(s.lambda_minus), 1.0);
        EXPECT_LT(std::abs(s.lambda_plus), 1.0);
        EXPECT_LE(s.lambda_minus, s.lambda_plus);
      }
    }
  }
}

TEST(SrhdState, MaxSignalSpeedCoversAllAxes) {
  const Prim w{1.0, 0.1, 0.8, 0.0, 1.0};
  const double m3 = srhd::max_signal_speed(w, kEos, 3);
  const double m1 = srhd::max_signal_speed(w, kEos, 1);
  EXPECT_GE(m3, m1);
  EXPECT_LT(m3, 1.0);
}

// --- con2prim property sweep --------------------------------------------

struct C2PCase {
  double rho;
  double w_lorentz;  // target Lorentz factor
  double p_over_rho;
};

class Con2PrimRoundTrip : public ::testing::TestWithParam<C2PCase> {};

TEST_P(Con2PrimRoundTrip, RecoversPrimitives) {
  const auto c = GetParam();
  const double v = std::sqrt(1.0 - 1.0 / (c.w_lorentz * c.w_lorentz));
  // Split velocity across two axes to exercise the vector recovery.
  Prim w;
  w.rho = c.rho;
  w.vx = v * 0.8;
  w.vy = v * 0.6;
  w.p = c.p_over_rho * c.rho;
  const Cons u = srhd::prim_to_cons(w, kEos);
  const auto r = srhd::cons_to_prim(u, kEos);
  ASSERT_TRUE(r.converged) << "W=" << c.w_lorentz << " p/rho=" << c.p_over_rho;
  EXPECT_FALSE(r.floored);
  // Tolerance scales with the roundoff floor of the residual, which is
  // eps * E: tiny p on a huge-energy state cannot be recovered to 1e-8.
  const double p_tol = std::max(1e-8 * w.p, 1e-14 * (u.tau + u.d));
  EXPECT_NEAR(r.prim.rho, w.rho, 1e-8 * w.rho);
  EXPECT_NEAR(r.prim.p, w.p, p_tol);
  EXPECT_NEAR(r.prim.vx, w.vx, 1e-9);
  EXPECT_NEAR(r.prim.vy, w.vy, 1e-9);
  EXPECT_LE(r.iterations, 60);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Con2PrimRoundTrip,
    ::testing::Values(C2PCase{1.0, 1.0, 1.0}, C2PCase{1.0, 1.1, 1e-6},
                      C2PCase{1.0, 2.0, 1e-3}, C2PCase{1.0, 5.0, 1.0},
                      C2PCase{1.0, 10.0, 1e3}, C2PCase{1.0, 50.0, 1e-2},
                      C2PCase{1e-6, 2.0, 1e2}, C2PCase{1e6, 3.0, 1e-8},
                      C2PCase{1.0, 1.0000001, 1e4},
                      C2PCase{13.3, 7.0, 0.3}));

TEST(Con2Prim, StaticGasIsExact) {
  const Prim w{3.0, 0.0, 0.0, 0.0, 0.7};
  const auto r = srhd::cons_to_prim(srhd::prim_to_cons(w, kEos), kEos);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.prim.rho, 3.0, 1e-10);
  EXPECT_NEAR(r.prim.p, 0.7, 1e-10);
  EXPECT_DOUBLE_EQ(r.prim.vx, 0.0);
}

TEST(Con2Prim, EvacuatedZoneGetsAtmosphere) {
  Cons u;
  u.d = 1e-20;  // below rho_floor
  u.tau = 1e-20;
  const auto r = srhd::cons_to_prim(u, kEos);
  EXPECT_TRUE(r.floored);
  EXPECT_GT(r.prim.rho, 0.0);
  EXPECT_GT(r.prim.p, 0.0);
  EXPECT_DOUBLE_EQ(r.prim.vx, 0.0);
}

TEST(Con2Prim, NonFiniteInputGetsAtmosphereNotThrow) {
  Cons u;
  u.d = std::nan("");
  u.tau = 1.0;
  srhd::Con2PrimResult r;
  EXPECT_NO_THROW(r = srhd::cons_to_prim(u, kEos));
  EXPECT_TRUE(r.floored);

  u.d = 1.0;
  u.sx = std::numeric_limits<double>::infinity();
  EXPECT_NO_THROW(r = srhd::cons_to_prim(u, kEos));
  EXPECT_TRUE(r.floored);
}

TEST(Con2Prim, SuperluminalMomentumIsFloored) {
  // |S| > tau + D + p_max: no physical solution exists.
  Cons u;
  u.d = 1.0;
  u.sx = 100.0;
  u.tau = 0.1;
  const auto r = srhd::cons_to_prim(u, kEos);
  EXPECT_TRUE(r.floored);
}

TEST(Con2Prim, RespectsCustomFloors) {
  srhd::Con2PrimOptions opt;
  opt.rho_floor = 1e-3;
  opt.p_floor = 1e-4;
  Cons u;
  u.d = 1e-6;  // below custom floor
  u.tau = 1e-6;
  const auto r = srhd::cons_to_prim(u, kEos, opt);
  EXPECT_TRUE(r.floored);
  EXPECT_DOUBLE_EQ(r.prim.rho, 1e-3);
  EXPECT_DOUBLE_EQ(r.prim.p, 1e-4);
}

TEST(Con2Prim, IterationCountRespectsBudget) {
  srhd::Con2PrimOptions opt;
  opt.max_iterations = 3;  // starve the solver
  const Prim w{1.0, 0.9, 0.0, 0.0, 10.0};
  const auto r = srhd::cons_to_prim(srhd::prim_to_cons(w, kEos), kEos, opt);
  EXPECT_LE(r.iterations, 3);
  // Either it converged very fast or it was floored — never a hang.
  EXPECT_TRUE(r.converged || r.floored);
}

TEST(SrhdCons, ArithmeticOperators) {
  const Cons a{1, 2, 3, 4, 5};
  const Cons b{10, 20, 30, 40, 50};
  const Cons sum = a + b;
  EXPECT_DOUBLE_EQ(sum.d, 11);
  EXPECT_DOUBLE_EQ(sum.tau, 55);
  const Cons diff = b - a;
  EXPECT_DOUBLE_EQ(diff.sx, 18);
  const Cons scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled.sz, 8);
  EXPECT_DOUBLE_EQ(a.s_sq(), 4 + 9 + 16);
}

}  // namespace
