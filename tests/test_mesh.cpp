// Mesh layer: grid geometry, SoA field arrays, blocks, decomposition,
// halo exchange pack/unpack, and boundary conditions.

#include <gtest/gtest.h>

#include <numeric>
#include <span>
#include <vector>

#include "rshc/mesh/block.hpp"
#include "rshc/mesh/boundary.hpp"
#include "rshc/mesh/decomposition.hpp"
#include "rshc/mesh/field_array.hpp"
#include "rshc/mesh/grid.hpp"
#include "rshc/mesh/halo.hpp"

namespace {

using namespace rshc;
using namespace rshc::mesh;

TEST(Grid, GeometryBasics) {
  const Grid g = Grid::make_1d(10, 0.0, 2.0);
  EXPECT_EQ(g.ndim(), 1);
  EXPECT_EQ(g.extent(0), 10);
  EXPECT_EQ(g.extent(1), 1);
  EXPECT_DOUBLE_EQ(g.dx(0), 0.2);
  EXPECT_DOUBLE_EQ(g.cell_center(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(g.cell_center(0, 9), 1.9);
  EXPECT_EQ(g.num_cells(), 10);
}

TEST(Grid, TwoDimensional) {
  const Grid g = Grid::make_2d(8, 4, -1.0, 1.0, 0.0, 1.0);
  EXPECT_EQ(g.ndim(), 2);
  EXPECT_DOUBLE_EQ(g.dx(0), 0.25);
  EXPECT_DOUBLE_EQ(g.dx(1), 0.25);
  EXPECT_DOUBLE_EQ(g.min_dx(), 0.25);
  EXPECT_EQ(g.num_cells(), 32);
}

TEST(Grid, RejectsBadShapes) {
  EXPECT_THROW(Grid(0, {1, 1, 1}, {0, 0, 0}, {1, 1, 1}), Error);
  EXPECT_THROW(Grid(1, {0, 1, 1}, {0, 0, 0}, {1, 1, 1}), Error);
  EXPECT_THROW(Grid(1, {4, 1, 1}, {1, 0, 0}, {0, 1, 1}), Error);
}

TEST(FieldArray, SoALayoutIsContiguousPerVariable) {
  FieldArray f(3, 2, 4, 5);
  EXPECT_EQ(f.cells_per_var(), 40u);
  EXPECT_EQ(f.size(), 120u);
  f(1, 0, 0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(f.var(1)[0], 7.0);
  f(2, 1, 3, 4) = 9.0;
  EXPECT_DOUBLE_EQ(f.var(2)[f.cell_index(1, 3, 4)], 9.0);
  EXPECT_EQ(f.cell_index(1, 3, 4), (1u * 4 + 3) * 5 + 4);
}

TEST(FieldArray, FillSetsEverything) {
  FieldArray f(2, 1, 3, 3);
  f.fill(2.5);
  for (const double v : f.flat()) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(FieldArray, PackUnpackBoxRoundTripsEveryCell) {
  FieldArray f(2, 4, 5, 6);
  for (int v = 0; v < 2; ++v) {
    for (int k = 0; k < 4; ++k) {
      for (int j = 0; j < 5; ++j) {
        for (int i = 0; i < 6; ++i) {
          f(v, k, j, i) = 1000.0 * v + 100.0 * k + 10.0 * j + i;
        }
      }
    }
  }
  // Interior sub-box: pack, clear the box, unpack, and require the exact
  // values back while cells outside the box stay untouched.
  const BoxSpec box{1, 2, 3, 2, 2, 2};
  std::vector<double> staged(2 * box.cells(), -1.0);
  f.pack_box(box, staged);
  // v-major, then (k, j, i): first element is (v=0, k=1, j=2, i=3).
  EXPECT_DOUBLE_EQ(staged[0], 100.0 + 20.0 + 3.0);
  EXPECT_DOUBLE_EQ(staged[1], 100.0 + 20.0 + 4.0);        // +i
  EXPECT_DOUBLE_EQ(staged[2], 100.0 + 30.0 + 3.0);        // +j
  EXPECT_DOUBLE_EQ(staged[4], 200.0 + 20.0 + 3.0);        // +k
  EXPECT_DOUBLE_EQ(staged[box.cells()], 1123.0);          // +v
  FieldArray g = f;
  for (int v = 0; v < 2; ++v) {
    for (int k = 1; k < 3; ++k) {
      for (int j = 2; j < 4; ++j) {
        for (int i = 3; i < 5; ++i) g(v, k, j, i) = -7.0;
      }
    }
  }
  g.unpack_box(box, staged);
  for (std::size_t n = 0; n < f.size(); ++n) {
    EXPECT_DOUBLE_EQ(g.flat()[n], f.flat()[n]) << "cell " << n;
  }
}

TEST(FieldArray, FullArrayBoxEqualsFlat) {
  FieldArray f(3, 2, 3, 4);
  std::iota(f.flat().begin(), f.flat().end(), 0.0);
  const BoxSpec all{0, 0, 0, f.nk(), f.nj(), f.ni()};
  std::vector<double> staged(f.size());
  f.pack_box(all, staged);
  for (std::size_t n = 0; n < f.size(); ++n) {
    EXPECT_DOUBLE_EQ(staged[n], f.flat()[n]);
  }
}

TEST(FieldArray, BoxBoundsAndSizeAreChecked) {
  FieldArray f(1, 2, 2, 2);
  std::vector<double> staged(8);
  EXPECT_THROW(f.pack_box(BoxSpec{0, 0, 1, 2, 2, 2}, staged), rshc::Error);
  EXPECT_THROW(f.pack_box(BoxSpec{0, 0, 0, 2, 2, 2}, std::span(staged).first(4)),
               rshc::Error);
  EXPECT_THROW(f.unpack_box(BoxSpec{-1, 0, 0, 1, 1, 1},
                            std::span<const double>(staged).first(1)),
               rshc::Error);
}

TEST(Block, GhostGeometry1d) {
  const Grid g = Grid::make_1d(16, 0.0, 1.0);
  Block b(g, BlockExtents{{0, 0, 0}, {16, 1, 1}}, 3, 5, 5);
  EXPECT_EQ(b.interior(0), 16);
  EXPECT_EQ(b.total(0), 22);
  EXPECT_EQ(b.ghost(0), 3);
  EXPECT_EQ(b.ghost(1), 0);  // inactive axis has no ghosts
  EXPECT_EQ(b.total(1), 1);
  EXPECT_EQ(b.begin(0), 3);
  EXPECT_EQ(b.end(0), 19);
  // First interior local cell maps to the first global center.
  EXPECT_DOUBLE_EQ(b.center(0, 3), g.cell_center(0, 0));
}

TEST(Block, SubBlockCentersUseGlobalCoordinates) {
  const Grid g = Grid::make_2d(8, 8, 0.0, 1.0, 0.0, 1.0);
  Block b(g, BlockExtents{{4, 2, 0}, {8, 6, 1}}, 2, 5, 5);
  EXPECT_EQ(b.interior(0), 4);
  EXPECT_DOUBLE_EQ(b.center(0, b.begin(0)), g.cell_center(0, 4));
  EXPECT_DOUBLE_EQ(b.center(1, b.begin(1)), g.cell_center(1, 2));
}

TEST(Decomposition, ExtentsPartitionTheGrid) {
  const Grid g = Grid::make_2d(10, 7, 0.0, 1.0, 0.0, 1.0);
  const Decomposition d(g, {3, 2, 1});
  EXPECT_EQ(d.num_blocks(), 6);
  long long covered = 0;
  for (int b = 0; b < d.num_blocks(); ++b) {
    covered += d.extents(b).num_cells();
  }
  EXPECT_EQ(covered, g.num_cells());
  // Remainder spread: 10 = 4 + 3 + 3 across 3 blocks.
  EXPECT_EQ(d.extents(0).width(0), 4);
  EXPECT_EQ(d.extents(1).width(0), 3);
}

TEST(Decomposition, BlockCoordsRoundTrip) {
  const Grid g = Grid::make_2d(8, 8, 0.0, 1.0, 0.0, 1.0);
  const Decomposition d(g, {2, 4, 1});
  for (int b = 0; b < d.num_blocks(); ++b) {
    EXPECT_EQ(d.block_id(d.block_coords(b)), b);
  }
}

TEST(Decomposition, NeighborsRespectPeriodicity) {
  const Grid g = Grid::make_1d(12, 0.0, 1.0);
  const Decomposition d(g, {3, 1, 1});
  EXPECT_EQ(d.neighbor(0, 0, 0, true).value(), 2);   // wraps
  EXPECT_FALSE(d.neighbor(0, 0, 0, false).has_value());
  EXPECT_EQ(d.neighbor(0, 0, 1, false).value(), 1);
  EXPECT_EQ(d.neighbor(2, 0, 1, true).value(), 0);
}

TEST(Decomposition, RejectsOversplit) {
  const Grid g = Grid::make_1d(4, 0.0, 1.0);
  EXPECT_THROW(Decomposition(g, {5, 1, 1}), Error);
}

// --- halo exchange ----------------------------------------------------------

Block make_block_1d(const Grid& g, long long lo, long long hi, int ng) {
  return Block(g, BlockExtents{{lo, 0, 0}, {hi, 1, 1}}, ng, 2, 2);
}

TEST(Halo, CopyBetweenSiblingBlocks1d) {
  const Grid g = Grid::make_1d(8, 0.0, 1.0);
  Block a = make_block_1d(g, 0, 4, 2);
  Block b = make_block_1d(g, 4, 8, 2);
  // Tag each interior cell with its global index (var 0) and 10x (var 1).
  for (Block* blk : {&a, &b}) {
    for (int i = blk->begin(0); i < blk->end(0); ++i) {
      const double gx = blk->extents().lo[0] + (i - blk->ghost(0));
      blk->prim()(0, 0, 0, i) = gx;
      blk->prim()(1, 0, 0, i) = 10.0 * gx;
    }
  }
  // b's low ghosts come from a's high interior cells (globals 2, 3).
  copy_halo(b, a, 0, 0);
  EXPECT_DOUBLE_EQ(b.prim()(0, 0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(b.prim()(0, 0, 0, 1), 3.0);
  EXPECT_DOUBLE_EQ(b.prim()(1, 0, 0, 1), 30.0);
  // a's high ghosts come from b's low interior cells (globals 4, 5).
  copy_halo(a, b, 0, 1);
  EXPECT_DOUBLE_EQ(a.prim()(0, 0, 0, a.end(0)), 4.0);
  EXPECT_DOUBLE_EQ(a.prim()(0, 0, 0, a.end(0) + 1), 5.0);
}

TEST(Halo, PackUnpackMatchesDirectCopy) {
  const Grid g = Grid::make_2d(8, 6, 0.0, 1.0, 0.0, 1.0);
  auto make = [&](long long xlo, long long xhi) {
    return Block(g, BlockExtents{{xlo, 0, 0}, {xhi, 6, 1}}, 2, 3, 3);
  };
  Block a = make(0, 4);
  Block b1 = make(4, 8);
  Block b2 = make(4, 8);
  int counter = 0;
  for (int v = 0; v < 3; ++v) {
    for (int j = a.begin(1); j < a.end(1); ++j) {
      for (int i = a.begin(0); i < a.end(0); ++i) {
        a.prim()(v, 0, j, i) = counter++;
      }
    }
  }
  // Path 1: direct shared-memory copy.
  copy_halo(b1, a, 0, 0);
  // Path 2: pack -> buffer -> unpack (the distributed path).
  std::vector<double> buf(halo_buffer_size(a, 0));
  pack_face(a, 0, 1, buf);  // a's high face feeds b's low ghosts
  unpack_ghost(b2, 0, 0, buf);
  for (int v = 0; v < 3; ++v) {
    for (int j = b1.begin(1); j < b1.end(1); ++j) {
      for (int gg = 0; gg < 2; ++gg) {
        EXPECT_DOUBLE_EQ(b1.prim()(v, 0, j, gg), b2.prim()(v, 0, j, gg))
            << "v=" << v << " j=" << j << " g=" << gg;
      }
    }
  }
}

TEST(Halo, PeriodicWrapOnSingleBlock) {
  const Grid g = Grid::make_1d(6, 0.0, 1.0);
  Block b = make_block_1d(g, 0, 6, 2);
  for (int i = b.begin(0); i < b.end(0); ++i) {
    b.prim()(0, 0, 0, i) = static_cast<double>(i - b.ghost(0));
  }
  apply_periodic(b, 0);
  EXPECT_DOUBLE_EQ(b.prim()(0, 0, 0, 0), 4.0);  // wraps to cells 4, 5
  EXPECT_DOUBLE_EQ(b.prim()(0, 0, 0, 1), 5.0);
  EXPECT_DOUBLE_EQ(b.prim()(0, 0, 0, b.end(0)), 0.0);
  EXPECT_DOUBLE_EQ(b.prim()(0, 0, 0, b.end(0) + 1), 1.0);
}

TEST(Halo, SizeMismatchThrows) {
  const Grid g = Grid::make_1d(8, 0.0, 1.0);
  Block a = make_block_1d(g, 0, 4, 2);
  std::vector<double> wrong(3);
  EXPECT_THROW(pack_face(a, 0, 0, wrong), Error);
  EXPECT_THROW(unpack_ghost(a, 0, 0, wrong), Error);
}

// --- boundary conditions ----------------------------------------------------

TEST(Boundary, OutflowCopiesNearestInterior) {
  const Grid g = Grid::make_1d(6, 0.0, 1.0);
  Block b = make_block_1d(g, 0, 6, 2);
  for (int i = b.begin(0); i < b.end(0); ++i) {
    b.prim()(0, 0, 0, i) = static_cast<double>(i);
  }
  apply_physical_boundary(b, 0, 0, BcType::kOutflow, {});
  apply_physical_boundary(b, 0, 1, BcType::kOutflow, {});
  EXPECT_DOUBLE_EQ(b.prim()(0, 0, 0, 0), b.prim()(0, 0, 0, b.begin(0)));
  EXPECT_DOUBLE_EQ(b.prim()(0, 0, 0, 1), b.prim()(0, 0, 0, b.begin(0)));
  EXPECT_DOUBLE_EQ(b.prim()(0, 0, 0, b.end(0) + 1),
                   b.prim()(0, 0, 0, b.end(0) - 1));
}

TEST(Boundary, ReflectMirrorsAndNegatesSelectedVars) {
  const Grid g = Grid::make_1d(6, 0.0, 1.0);
  Block b = make_block_1d(g, 0, 6, 2);
  for (int i = b.begin(0); i < b.end(0); ++i) {
    b.prim()(0, 0, 0, i) = static_cast<double>(i);       // scalar-like
    b.prim()(1, 0, 0, i) = static_cast<double>(i) + 0.5;  // velocity-like
  }
  const int negate[] = {1};
  apply_physical_boundary(b, 0, 0, BcType::kReflect, negate);
  // Ghost layer g mirrors interior layer g (0-based from the face).
  EXPECT_DOUBLE_EQ(b.prim()(0, 0, 0, 1), b.prim()(0, 0, 0, 2));
  EXPECT_DOUBLE_EQ(b.prim()(0, 0, 0, 0), b.prim()(0, 0, 0, 3));
  EXPECT_DOUBLE_EQ(b.prim()(1, 0, 0, 1), -b.prim()(1, 0, 0, 2));
  EXPECT_DOUBLE_EQ(b.prim()(1, 0, 0, 0), -b.prim()(1, 0, 0, 3));
}

TEST(Boundary, PeriodicViaPhysicalPathIsRejected) {
  const Grid g = Grid::make_1d(6, 0.0, 1.0);
  Block b = make_block_1d(g, 0, 6, 2);
  EXPECT_THROW(apply_physical_boundary(b, 0, 0, BcType::kPeriodic, {}),
               Error);
}

TEST(Boundary, NamesRoundTrip) {
  for (const BcType t : {BcType::kPeriodic, BcType::kOutflow,
                         BcType::kReflect}) {
    EXPECT_EQ(parse_bc(bc_name(t)), t);
  }
  EXPECT_THROW((void)parse_bc("absorbing"), Error);
  const BoundarySpec spec = BoundarySpec::all(BcType::kOutflow);
  EXPECT_FALSE(spec.periodic(0));
  EXPECT_FALSE(spec.periodic(2));
}

}  // namespace
