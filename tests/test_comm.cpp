// Tests for the message-passing layer: point-to-point semantics,
// collectives, ordering with modeled latency, and the Cartesian topology.

#include <gtest/gtest.h>

#include <numeric>

#include "rshc/comm/cart_topology.hpp"
#include "rshc/comm/communicator.hpp"
#include "rshc/common/error.hpp"

namespace {

using namespace rshc::comm;

TEST(Comm, SendRecvRoundTrip) {
  run_world(2, [](Communicator& c) {
    if (c.rank() == 0) {
      const std::vector<double> data{1.0, 2.0, 3.0};
      c.send(1, 7, std::span<const double>(data));
    } else {
      std::vector<double> out(3);
      const int src = c.recv(0, 7, std::span<double>(out));
      EXPECT_EQ(src, 0);
      EXPECT_EQ(out, (std::vector<double>{1.0, 2.0, 3.0}));
    }
  });
}

TEST(Comm, RingSendRecvAllRanks) {
  constexpr int kN = 5;
  run_world(kN, [](Communicator& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<double> mine{static_cast<double>(c.rank())};
    std::vector<double> got(1);
    c.sendrecv(next, std::span<const double>(mine), prev,
               std::span<double>(got), 3);
    EXPECT_EQ(got[0], static_cast<double>(prev));
  });
}

TEST(Comm, SelfSendWorks) {
  run_world(1, [](Communicator& c) {
    c.send_value(0, 1, 3.5);
    EXPECT_EQ(c.recv_value<double>(0, 1), 3.5);
  });
}

TEST(Comm, WildcardSourceAndTag) {
  run_world(3, [](Communicator& c) {
    if (c.rank() != 0) {
      c.send_value(0, 100 + c.rank(), static_cast<double>(c.rank()));
    } else {
      double sum = 0.0;
      for (int i = 0; i < 2; ++i) {
        int src = -2;
        auto bytes = c.recv_any_bytes(kAnySource, kAnyTag, &src);
        EXPECT_EQ(bytes.size(), sizeof(double));
        double v;
        std::memcpy(&v, bytes.data(), sizeof(double));
        EXPECT_EQ(v, static_cast<double>(src));
        sum += v;
      }
      EXPECT_EQ(sum, 3.0);
    }
  });
}

TEST(Comm, RecvSizeMismatchThrows) {
  run_world(1, [](Communicator& c) {
    c.send_value(0, 1, 3.5);
    std::vector<double> too_big(2);
    EXPECT_THROW(c.recv(0, 1, std::span<double>(too_big)), rshc::Error);
  });
}

TEST(Comm, TagsKeepMessagesApart) {
  run_world(2, [](Communicator& c) {
    if (c.rank() == 0) {
      c.send_value(1, 1, 10.0);
      c.send_value(1, 2, 20.0);
    } else {
      // Receive in reverse tag order; matching must be by tag, not FIFO.
      EXPECT_EQ(c.recv_value<double>(0, 2), 20.0);
      EXPECT_EQ(c.recv_value<double>(0, 1), 10.0);
    }
  });
}

TEST(Comm, SameTagIsFifoOrdered) {
  TransferModel model;
  model.latency_sec = 2e-3;
  run_world(
      2,
      [](Communicator& c) {
        if (c.rank() == 0) {
          for (int i = 0; i < 5; ++i) {
            c.send_value(1, 9, static_cast<double>(i));
          }
        } else {
          for (int i = 0; i < 5; ++i) {
            EXPECT_EQ(c.recv_value<double>(0, 9), static_cast<double>(i));
          }
        }
      },
      model);
}

TEST(Comm, LatencyDelaysDelivery) {
  TransferModel model;
  model.latency_sec = 20e-3;
  // Measure from a pre-world epoch, not from the receiver's recv() call:
  // on a loaded machine the receiver thread can be scheduled late enough
  // that the (already-delivered) message makes its recv look instant.
  // Delivery still cannot complete before send + latency >= epoch +
  // latency, so the epoch-relative bound is immune to scheduling delay.
  const auto epoch = std::chrono::steady_clock::now();
  run_world(
      2,
      [&](Communicator& c) {
        if (c.rank() == 0) {
          c.send_value(1, 1, 1.0);
        } else {
          (void)c.recv_value<double>(0, 1);
          const double waited =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            epoch)
                  .count();
          EXPECT_GE(waited, 0.015);
        }
      },
      model);
}

TEST(Comm, BarrierSeparatesPhases) {
  constexpr int kN = 4;
  std::atomic<int> phase1{0};
  run_world(kN, [&](Communicator& c) {
    phase1.fetch_add(1);
    c.barrier();
    EXPECT_EQ(phase1.load(), kN);
    c.barrier();  // reusable
  });
}

class AllreduceOps : public ::testing::TestWithParam<ReduceOp> {};

TEST_P(AllreduceOps, ScalarAgreesOnAllRanks) {
  const ReduceOp op = GetParam();
  constexpr int kN = 4;
  run_world(kN, [op](Communicator& c) {
    const double mine = static_cast<double>(c.rank() + 1);
    const double got = c.allreduce(mine, op);
    double expect = 0.0;
    switch (op) {
      case ReduceOp::kSum: expect = 10.0; break;
      case ReduceOp::kMin: expect = 1.0; break;
      case ReduceOp::kMax: expect = 4.0; break;
    }
    EXPECT_DOUBLE_EQ(got, expect);
  });
}

INSTANTIATE_TEST_SUITE_P(Ops, AllreduceOps,
                         ::testing::Values(ReduceOp::kSum, ReduceOp::kMin,
                                           ReduceOp::kMax));

TEST(Comm, VectorAllreduceAndRepetition) {
  run_world(3, [](Communicator& c) {
    for (int round = 0; round < 10; ++round) {
      std::vector<double> v{static_cast<double>(c.rank()),
                            static_cast<double>(round)};
      c.allreduce(std::span<double>(v), ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(v[0], 3.0);
      EXPECT_DOUBLE_EQ(v[1], 3.0 * round);
    }
  });
}

TEST(Comm, BcastFromEveryRoot) {
  constexpr int kN = 3;
  for (int root = 0; root < kN; ++root) {
    run_world(kN, [root](Communicator& c) {
      std::vector<double> data(2, c.rank() == root ? 5.5 : 0.0);
      c.bcast(std::span<double>(data), root);
      EXPECT_DOUBLE_EQ(data[0], 5.5);
      EXPECT_DOUBLE_EQ(data[1], 5.5);
    });
  }
}

TEST(Comm, GatherCollectsInRankOrder) {
  run_world(4, [](Communicator& c) {
    const auto all = c.gather(static_cast<double>(c.rank() * 10), 0);
    if (c.rank() == 0) {
      EXPECT_EQ(all, (std::vector<double>{0.0, 10.0, 20.0, 30.0}));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, WorldCountsTraffic) {
  World world(2);
  auto c0 = world.communicator(0);
  auto c1 = world.communicator(1);
  std::vector<double> payload(10, 1.0);
  c0.send(1, 1, std::span<const double>(payload));
  std::vector<double> out(10);
  c1.recv(0, 1, std::span<double>(out));
  EXPECT_EQ(world.total_messages(), 1u);
  EXPECT_EQ(world.total_bytes(), 10 * sizeof(double));
}

TEST(Comm, RankExceptionPropagates) {
  EXPECT_THROW(run_world(1, [](Communicator&) {
                 throw std::runtime_error("rank failed");
               }),
               std::runtime_error);
}

TEST(CartTopology, BalancedFactorization2d) {
  const CartTopology t(6, 2);
  EXPECT_EQ(t.dims()[0] * t.dims()[1], 6);
  EXPECT_GE(t.dims()[0], 2);  // 3x2 or 2x3, never 6x1
}

TEST(CartTopology, CoordsRoundTrip) {
  const CartTopology t(12, 3);
  for (int r = 0; r < 12; ++r) {
    EXPECT_EQ(t.rank_of(t.coords(r)), r);
  }
}

TEST(CartTopology, RequestedDimsHonoured) {
  const CartTopology t(8, 2, {4, 0, 0});
  EXPECT_EQ(t.dims()[0], 4);
  EXPECT_EQ(t.dims()[1], 2);
  EXPECT_THROW(CartTopology(8, 2, {3, 0, 0}), rshc::Error);
}

TEST(CartTopology, PeriodicNeighborsWrap) {
  const CartTopology t(4, 1);
  EXPECT_EQ(t.neighbor(0, 0, -1).value(), 3);
  EXPECT_EQ(t.neighbor(3, 0, +1).value(), 0);
}

TEST(CartTopology, NonPeriodicEdgeHasNoNeighbor) {
  const CartTopology t(4, 1, {0, 0, 0}, {false, false, false});
  EXPECT_FALSE(t.neighbor(0, 0, -1).has_value());
  EXPECT_TRUE(t.neighbor(0, 0, +1).has_value());
  EXPECT_FALSE(t.neighbor(3, 0, +1).has_value());
}

TEST(CartTopology, SingleRankSelfNeighborWhenPeriodic) {
  const CartTopology t(1, 2);
  EXPECT_EQ(t.neighbor(0, 0, +1).value(), 0);
  EXPECT_EQ(t.neighbor(0, 1, -1).value(), 0);
}

}  // namespace
