// Cross-cutting stress and edge coverage: heavy message traffic, device
// stream churn, 3D decomposition, integrator conservation sweep, and the
// wavelet 2D thresholding path that the core suites do not exercise.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "rshc/comm/communicator.hpp"
#include "rshc/device/device.hpp"
#include "rshc/mesh/decomposition.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"
#include "rshc/wavelet/interp_wavelet.hpp"

namespace {

using namespace rshc;

TEST(Stress, ManySmallMessagesStayOrderedPerLink) {
  comm::run_world(3, [](comm::Communicator& c) {
    constexpr int kN = 500;
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    for (int i = 0; i < kN; ++i) {
      c.send_value(next, 5, static_cast<double>(i));
    }
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(c.recv_value<double>(prev, 5), static_cast<double>(i));
    }
  });
}

TEST(Stress, InterleavedTagsAcrossManyRounds) {
  comm::run_world(2, [](comm::Communicator& c) {
    for (int round = 0; round < 50; ++round) {
      if (c.rank() == 0) {
        c.send_value(1, 2, 2.0 * round);
        c.send_value(1, 1, 1.0 * round);
        EXPECT_DOUBLE_EQ(c.recv_value<double>(1, 3), 3.0 * round);
      } else {
        // Deliberately receive in the "wrong" order.
        EXPECT_DOUBLE_EQ(c.recv_value<double>(0, 1), 1.0 * round);
        EXPECT_DOUBLE_EQ(c.recv_value<double>(0, 2), 2.0 * round);
        c.send_value(0, 3, 3.0 * round);
      }
    }
  });
}

TEST(Stress, AccelStreamSurvivesHighChurn) {
  auto dev = device::make_device(device::Backend::kAccelSim);
  device::Buffer buf = dev->alloc(64);
  std::vector<double> host(64, 0.0);
  dev->upload_async(host, buf);
  auto view = buf.device_view();
  for (int i = 0; i < 300; ++i) {
    dev->launch([view] {
      for (double& x : view) x += 1.0;
    });
  }
  dev->download_async(buf, host);
  dev->synchronize();
  for (const double x : host) EXPECT_DOUBLE_EQ(x, 300.0);
}

TEST(Stress, ThreeDimensionalDecompositionPartitions) {
  const mesh::Grid g(3, {12, 10, 8}, {0, 0, 0}, {1, 1, 1});
  const mesh::Decomposition d(g, {3, 2, 2});
  EXPECT_EQ(d.num_blocks(), 12);
  long long covered = 0;
  for (int b = 0; b < d.num_blocks(); ++b) {
    covered += d.extents(b).num_cells();
    // Every block must have a neighbour on every axis under periodicity.
    for (int a = 0; a < 3; ++a) {
      EXPECT_TRUE(d.neighbor(b, a, 0, true).has_value());
      EXPECT_TRUE(d.neighbor(b, a, 1, true).has_value());
    }
  }
  EXPECT_EQ(covered, g.num_cells());
}

class IntegratorConservation
    : public ::testing::TestWithParam<time::Integrator> {};

TEST_P(IntegratorConservation, PeriodicRunConservesForEveryIntegrator) {
  const mesh::Grid g = mesh::Grid::make_1d(48, 0.0, 1.0);
  solver::SrhdSolver::Options opt;
  opt.integrator = GetParam();
  opt.cfl = 0.2;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  solver::SrhdSolver s(g, opt);
  s.initialize(problems::smooth_wave_ic({}));
  const auto before = s.total_cons();
  for (int i = 0; i < 20; ++i) s.step(s.compute_dt());
  const auto after = s.total_cons();
  EXPECT_NEAR(after.d, before.d, 1e-12 * before.d);
  EXPECT_NEAR(after.tau, before.tau, 1e-11 * std::abs(before.tau));
}

INSTANTIATE_TEST_SUITE_P(Integrators, IntegratorConservation,
                         ::testing::Values(time::Integrator::kEuler,
                                           time::Integrator::kSspRk2,
                                           time::Integrator::kSspRk3));

TEST(Stress, Wavelet2dThresholdCompressesSmoothField) {
  const int levels = 5;
  const std::size_t n = wavelet::grid_size(levels);
  std::vector<double> v(n * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i) / static_cast<double>(n - 1);
      const double y = static_cast<double>(j) / static_cast<double>(n - 1);
      v[j * n + i] = std::sin(2.0 * x + y);
    }
  }
  const auto original = v;
  wavelet::forward_2d(v, n, n, levels);
  // Threshold row-wise (the 2D coefficients live on the same lattice).
  std::size_t zeroed = 0;
  for (auto& c : v) {
    if (std::abs(c) < 1e-6) {
      c = 0.0;
      ++zeroed;
    }
  }
  EXPECT_GT(zeroed, v.size() / 3);
  wavelet::inverse_2d(v, n, n, levels);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], original[i], 1e-4) << i;
  }
}

TEST(Stress, SolverSurvivesManyTinySteps) {
  // dt far below CFL must be harmless (robustness against driver bugs
  // that produce tiny steps near output times).
  const mesh::Grid g = mesh::Grid::make_1d(32, 0.0, 1.0);
  solver::SrhdSolver::Options opt;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  solver::SrhdSolver s(g, opt);
  s.initialize(problems::smooth_wave_ic({}));
  for (int i = 0; i < 200; ++i) s.step(1e-9);
  EXPECT_NEAR(s.time(), 2e-7, 1e-12);
  for (const double r : s.gather_prim_var(srhd::kRho)) {
    EXPECT_TRUE(std::isfinite(r));
  }
  EXPECT_EQ(s.c2p_stats().floored_zones, 0);
}

}  // namespace
