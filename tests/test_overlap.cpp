// Latency-hiding halo exchange: the overlapped (interior-first, futurized)
// schedule must be *bitwise* identical to the synchronous one — across
// rank counts, reconstruction methods, Riemann solvers, and both physics
// systems — under injected message latency and randomized delivery jitter
// that scrambles arrival order. Plus the comm-future ordering contract
// (wait_any is arrival-order, content is posting-order) and the HaloGuard
// catching a premature unpack across the async window.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "rshc/check/check.hpp"
#include "rshc/check/halo_guard.hpp"
#include "rshc/comm/communicator.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/distributed.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace {

using namespace rshc;

// Jittery transfer model: enough latency that interior compute genuinely
// overlaps in-flight messages, enough jitter that faces complete in a
// different order than they were posted.
comm::TransferModel jittery_model() {
  comm::TransferModel m;
  m.latency_sec = 200e-6;
  m.jitter_sec = 300e-6;
  return m;
}

srhd::Prim wavy_srhd_ic(double x, double y, double) {
  srhd::Prim w;
  w.rho = 1.0 + 0.4 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
  w.vx = 0.3;
  w.vy = -0.15;
  w.p = 1.0;
  return w;
}

template <typename Physics>
typename solver::FvSolver<Physics>::Options matrix_opts(
    recon::Method recon, riemann::Solver rs) {
  typename solver::FvSolver<Physics>::Options opt;
  opt.recon = recon;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  opt.physics.riemann = rs;
  return opt;
}

// SRMHD context has no `riemann` member (HLL only); specialize.
template <>
solver::FvSolver<solver::SrmhdPhysics>::Options
matrix_opts<solver::SrmhdPhysics>(recon::Method recon, riemann::Solver) {
  solver::FvSolver<solver::SrmhdPhysics>::Options opt;
  opt.recon = recon;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  return opt;
}

/// Run `steps` fixed-dt steps distributed over `nranks` with the given
/// transfer model and overlap setting; return var `v` gathered on rank 0.
template <typename Physics>
std::vector<double> run_distributed(
    const mesh::Grid& g,
    const typename solver::FvSolver<Physics>::Options& opt,
    const std::function<typename Physics::Prim(double, double, double)>& ic,
    int nranks, int steps, double dt, const comm::TransferModel& model,
    bool overlap, int v) {
  std::vector<double> out;
  comm::run_world(
      nranks,
      [&](comm::Communicator& c) {
        solver::DistributedSolver<Physics> s(g, c, opt);
        s.set_overlap(overlap);
        s.initialize(ic);
        for (int i = 0; i < steps; ++i) s.step(dt);
        auto gathered = s.gather_prim_var_root(v);
        if (c.rank() == 0) out = std::move(gathered);
      },
      model);
  return out;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_NE(a.size(), 0u);
  // memcmp pins bit patterns, not just values (NaN/-0.0 included).
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

// --- overlapped == synchronous, under latency + jitter -------------------

class OverlapRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(OverlapRankSweep, AsyncMatchesSyncBitwiseSrhd) {
  const int nranks = GetParam();
  const mesh::Grid g = mesh::Grid::make_2d(36, 36, 0.0, 1.0, 0.0, 1.0);
  const auto opt = matrix_opts<solver::SrhdPhysics>(recon::Method::kPLMMC,
                                                    riemann::Solver::kHLL);
  constexpr double kDt = 0.003;
  constexpr int kSteps = 6;

  const auto sync = run_distributed<solver::SrhdPhysics>(
      g, opt, wavy_srhd_ic, nranks, kSteps, kDt, jittery_model(),
      /*overlap=*/false, srhd::kRho);
  const auto async = run_distributed<solver::SrhdPhysics>(
      g, opt, wavy_srhd_ic, nranks, kSteps, kDt, jittery_model(),
      /*overlap=*/true, srhd::kRho);
  expect_bitwise_equal(async, sync);
}

// 4 ranks = 2x2 (every face internal), 9 ranks = 3x3 (a middle rank with
// four in-flight neighbours); 12x12-per-rank blocks at 9 ranks leave no
// ghost-free interior margin for WENO-width stencils on other tests'
// grids, so the sweep grid is sized to keep both regimes meaningful.
INSTANTIATE_TEST_SUITE_P(Ranks, OverlapRankSweep, ::testing::Values(4, 9));

TEST(Overlap, MatrixReconRiemannPhysicsRanks) {
  // recon x Riemann x {SRHD, SRMHD} x ranks, each pinned memcmp-style.
  // PCM (no ghost margin pressure), PPM and WENO5 (3-wide ghosts, so the
  // 9-rank 12-cell blocks exercise the degenerate no-interior fallback on
  // no axis but the margins are deep); HLL vs HLLC changes the flux core.
  const mesh::Grid g = mesh::Grid::make_2d(36, 36, 0.0, 1.0, 0.0, 1.0);
  constexpr double kDt = 0.002;
  constexpr int kSteps = 4;

  struct Case {
    recon::Method recon;
    riemann::Solver rs;
  };
  const std::array<Case, 3> cases = {{
      {recon::Method::kPCM, riemann::Solver::kHLL},
      {recon::Method::kPLMMC, riemann::Solver::kHLLC},
      {recon::Method::kWENO5, riemann::Solver::kHLL},
  }};

  for (const int nranks : {4, 9}) {
    for (const auto& c : cases) {
      SCOPED_TRACE(::testing::Message()
                   << "ranks=" << nranks
                   << " recon=" << recon::method_name(c.recon));
      const auto opt = matrix_opts<solver::SrhdPhysics>(c.recon, c.rs);
      const auto sync = run_distributed<solver::SrhdPhysics>(
          g, opt, wavy_srhd_ic, nranks, kSteps, kDt, jittery_model(),
          /*overlap=*/false, srhd::kRho);
      const auto async = run_distributed<solver::SrhdPhysics>(
          g, opt, wavy_srhd_ic, nranks, kSteps, kDt, jittery_model(),
          /*overlap=*/true, srhd::kRho);
      expect_bitwise_equal(async, sync);
    }
  }

  // SRMHD (HLL+GLM core) over the same rank sweep.
  const auto ic = problems::field_loop_ic({});
  for (const int nranks : {4, 9}) {
    SCOPED_TRACE(::testing::Message() << "srmhd ranks=" << nranks);
    const auto opt = matrix_opts<solver::SrmhdPhysics>(
        recon::Method::kPLMMC, riemann::Solver::kHLL);
    const auto sync = run_distributed<solver::SrmhdPhysics>(
        g, opt, ic, nranks, kSteps, kDt, jittery_model(),
        /*overlap=*/false, srmhd::kBy);
    const auto async = run_distributed<solver::SrmhdPhysics>(
        g, opt, ic, nranks, kSteps, kDt, jittery_model(),
        /*overlap=*/true, srmhd::kBy);
    expect_bitwise_equal(async, sync);
  }
}

TEST(Overlap, OverlapMatchesSerialSolverBitwise) {
  // The overlapped distributed run must also match the single-process
  // solver (not only the sync distributed run) — same compiled cores, no
  // drift anywhere in the chain.
  const mesh::Grid g = mesh::Grid::make_2d(24, 24, 0.0, 1.0, 0.0, 1.0);
  const auto opt = matrix_opts<solver::SrhdPhysics>(recon::Method::kPLMMC,
                                                    riemann::Solver::kHLL);
  constexpr double kDt = 0.004;
  constexpr int kSteps = 8;

  solver::SrhdSolver ref(g, opt);
  ref.initialize(wavy_srhd_ic);
  for (int i = 0; i < kSteps; ++i) ref.step(kDt);
  const auto rho_ref = ref.gather_prim_var(srhd::kRho);

  const auto rho_async = run_distributed<solver::SrhdPhysics>(
      g, opt, wavy_srhd_ic, 4, kSteps, kDt, jittery_model(),
      /*overlap=*/true, srhd::kRho);
  expect_bitwise_equal(rho_async, rho_ref);
}

#if RSHC_OBS_ENABLED
TEST(Overlap, CountersObserveInteriorWork) {
  const mesh::Grid g = mesh::Grid::make_2d(24, 24, 0.0, 1.0, 0.0, 1.0);
  const auto opt = matrix_opts<solver::SrhdPhysics>(recon::Method::kPLMMC,
                                                    riemann::Solver::kHLL);
  obs::Registry reg;
  comm::run_world(4, [&](comm::Communicator& c) {
    if (c.rank() == 0) {
      obs::ScopedRegistry scope(reg);
      solver::DistributedSrhdSolver s(g, c, opt);
      s.set_overlap(true);
      s.initialize(wavy_srhd_ic);
      for (int i = 0; i < 3; ++i) s.step(0.003);
    } else {
      solver::DistributedSrhdSolver s(g, c, opt);
      s.set_overlap(true);
      s.initialize(wavy_srhd_ic);
      for (int i = 0; i < 3; ++i) s.step(0.003);
    }
  });
  const obs::Snapshot snap = reg.snapshot();
  // 12x12 rank block, ng=2: interior box is 8x8 = 64 zones per stage,
  // 3 stages x 3 steps = 576 interior zones overlapped with comm.
  const obs::Snapshot::Entry* zones =
      snap.find("solver.rhs.interior_zones");
  ASSERT_NE(zones, nullptr);
  EXPECT_EQ(zones->value, 64.0 * 3 * 3);
  // hidden_ms exists whenever a whole millisecond of interior compute has
  // accumulated; on this tiny block it may legitimately stay unregistered,
  // so only its consistency is asserted, not its presence.
  const obs::Snapshot::Entry* hidden = snap.find("comm.overlap.hidden_ms");
  if (hidden != nullptr) EXPECT_GE(hidden->value, 0.0);
}
#endif

// --- wait_any ordering contract ------------------------------------------

TEST(Overlap, WaitAnyCompletionOrderIndependence) {
  // Sender launches messages whose modeled arrival order is scrambled by
  // deterministic jitter; the receiver posts irecvs in tag order and
  // drains with wait_any. Every payload must land in the buffer its tag
  // was posted for, no matter which future completes first — and the set
  // of returned indices must be exactly {0..n-1}.
  constexpr int kMsgs = 6;
  comm::TransferModel model;
  model.latency_sec = 50e-6;
  model.jitter_sec = 500e-6;
  comm::run_world(
      2,
      [&](comm::Communicator& c) {
        if (c.rank() == 0) {
          for (int t = 0; t < kMsgs; ++t) {
            const double payload = 100.0 + t;
            c.isend(1, t, std::span<const double>(&payload, 1));
          }
        } else {
          std::array<double, kMsgs> bufs{};
          std::vector<comm::CommFuture> futures;
          futures.reserve(kMsgs);
          for (int t = 0; t < kMsgs; ++t) {
            futures.push_back(
                c.irecv(0, t, std::span<double>(&bufs[t], 1)));
          }
          std::vector<comm::CommFuture*> handles;
          for (auto& f : futures) handles.push_back(&f);
          std::array<bool, kMsgs> seen{};
          std::vector<comm::CommFuture*> pending = handles;
          std::vector<int> tags(kMsgs);
          for (int t = 0; t < kMsgs; ++t) tags[t] = t;
          while (!pending.empty()) {
            const std::size_t idx = comm::CommFuture::wait_any(
                std::span<comm::CommFuture* const>(pending.data(),
                                                   pending.size()));
            ASSERT_LT(idx, pending.size());
            const int tag = tags[idx];
            EXPECT_FALSE(seen[tag]);
            seen[tag] = true;
            EXPECT_TRUE(pending[idx]->done());
            EXPECT_EQ(pending[idx]->source(), 0);
            EXPECT_EQ(bufs[tag], 100.0 + tag);
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(idx));
            tags.erase(tags.begin() + static_cast<std::ptrdiff_t>(idx));
          }
          for (int t = 0; t < kMsgs; ++t) EXPECT_TRUE(seen[t]);
        }
      },
      model);
}

TEST(Overlap, FutureTestAndWaitSemantics) {
  comm::run_world(2, [](comm::Communicator& c) {
    if (c.rank() == 0) {
      // isend futures are complete at birth.
      const double v = 7.0;
      comm::CommFuture f = c.isend(1, 0, std::span<const double>(&v, 1));
      EXPECT_TRUE(f.valid());
      EXPECT_TRUE(f.done());
      EXPECT_TRUE(f.test());
      EXPECT_EQ(f.wait(), 1);  // dest, for symmetry with recv's source
    } else {
      double out = 0.0;
      comm::CommFuture f = c.irecv(0, 0, std::span<double>(&out, 1));
      EXPECT_TRUE(f.valid());
      // test() may complete it early or not; wait() must finish the job
      // and be idempotent.
      f.test();
      EXPECT_EQ(f.wait(), 0);
      EXPECT_TRUE(f.done());
      EXPECT_EQ(f.wait(), 0);
      EXPECT_EQ(out, 7.0);
    }
  });
}

// --- HaloGuard across the async window -----------------------------------

#if RSHC_CHECKS_ENABLED
TEST(Overlap, HaloGuardCatchesPrematureUnpack) {
  // The async window's failure mode: unpack a recv buffer whose future
  // has not completed. The guard state machine (armed at irecv post,
  // completed at wait) must flag the consume-before-complete ordering.
  check::set_action(check::Action::kCount);
  check::reset();
  check::HaloGuard guard;
  guard.post(0, 1);  // irecv posted: buffer contents undefined
  EXPECT_EQ(check::violation_count(), 0u);
  guard.consume(0, 1);  // premature unpack — no complete() yet
  EXPECT_EQ(check::violation_count(), 1);
  EXPECT_NE(check::last_violation().find("halo"), std::string::npos);
  EXPECT_NE(check::last_violation().find("before its exchange completed"),
            std::string::npos);

  // The legal ordering stays silent, including re-arming the same face.
  check::reset();
  guard.post(0, 1);
  guard.complete(0, 1);
  guard.consume(0, 1);
  EXPECT_EQ(check::violation_count(), 0);
  check::set_action(check::Action::kAbort);
}
#endif

}  // namespace
