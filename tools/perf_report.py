#!/usr/bin/env python3
"""Validate, inspect, and diff rshc.perf_report JSON files (BENCH_perf.json).

The report is the single performance artifact produced by bench/perf_suite
(schema in include/rshc/obs/report.hpp and DESIGN.md). This tool is the
CI-side half of the contract.

Subcommands
-----------
validate REPORT
    Structural checks only: schema name/version, required fields, ordered
    percentiles (min <= p50 <= p90 <= p99 <= max), sane rank roll-ups
    (min <= mean <= max, imbalance >= 1 when the phase ran).
compare [BASELINE] CURRENT [--threshold F] [--min-sum S]
    Diff two reports. BASELINE defaults to $RSHC_PERF_BASELINE when
    omitted. Schema mismatch or a phase that disappeared is a *structural*
    regression; a phase whose per-sample mean grew by more than
    --threshold (default 0.30 = 30%, far above timer jitter but well
    below a 2x algorithmic regression) is a *performance* regression.
    Phases whose baseline total is below --min-sum seconds (default 1e-4)
    are reported but never gate: their timings are noise-dominated.
    The F8 crossover counters (perf.f8.crossover_batch.*) are diffed as
    first-class rows alongside the phases: the crossover batch sliding up
    by more than one sweep step (x4), or leaving the swept range entirely
    (value 0), is a performance regression; a counter that disappears is
    structural.
show REPORT
    Human-readable table of the phases and counters.
selftest REPORT
    Self-check used by ctest (perf_report_selftest): validates REPORT,
    then asserts compare(REPORT, REPORT) passes, an injected 10x slowdown
    fails with exit 1, and a dropped phase fails with exit 2.

Exit codes: 0 = ok, 1 = performance regression, 2 = structural problem
(invalid/missing file, schema mismatch, missing phase). Keeping the two
failure modes distinct lets CI gate hard on structure while treating pure
timing deltas as advisory on noisy shared runners.
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys

SCHEMA_NAME = "rshc.perf_report"
SCHEMA_VERSION = 1

EXIT_OK = 0
EXIT_PERF = 1
EXIT_STRUCTURAL = 2

# A hair of slack for percentile ordering: the p99 interpolation and the
# exact max are computed by different paths and may disagree in the last ulp.
_EPS = 1e-12

_REQUIRED_TOP = ("schema", "schema_version", "suite", "git_sha", "build",
                 "hardware", "ranks", "phases", "counters")
_REQUIRED_PHASE = ("name", "count", "sum_s", "min_s", "max_s", "p50_s",
                   "p90_s", "p99_s")
_REQUIRED_RANKS = ("min_s", "mean_s", "max_s", "imbalance")


def load(path: str) -> dict:
    """Parse a report or die with a structural error."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        die_structural(f"{path}: cannot read report: {exc}")
        raise AssertionError  # unreachable


def die_structural(msg: str) -> None:
    print(f"perf_report: STRUCTURAL: {msg}", file=sys.stderr)
    sys.exit(EXIT_STRUCTURAL)


def validate_report(rep: dict, label: str) -> list[str]:
    """Return a list of structural problems (empty = valid)."""
    problems: list[str] = []
    for key in _REQUIRED_TOP:
        if key not in rep:
            problems.append(f"{label}: missing top-level field '{key}'")
    if rep.get("schema") != SCHEMA_NAME:
        problems.append(f"{label}: schema is {rep.get('schema')!r}, "
                        f"expected {SCHEMA_NAME!r}")
    if rep.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"{label}: schema_version "
                        f"{rep.get('schema_version')!r}, expected "
                        f"{SCHEMA_VERSION}")
    phases = rep.get("phases")
    if not isinstance(phases, list) or not phases:
        problems.append(f"{label}: 'phases' must be a non-empty list")
        return problems
    for ph in phases:
        name = ph.get("name", "<unnamed>")
        for key in _REQUIRED_PHASE:
            if key not in ph:
                problems.append(f"{label}: phase {name}: missing '{key}'")
        if any(key not in ph for key in _REQUIRED_PHASE):
            continue
        if ph["count"] <= 0:
            problems.append(f"{label}: phase {name}: count must be > 0")
        order = (ph["min_s"], ph["p50_s"], ph["p90_s"], ph["p99_s"],
                 ph["max_s"])
        if any(a > b + _EPS for a, b in zip(order, order[1:])):
            problems.append(f"{label}: phase {name}: percentiles out of "
                            f"order: min/p50/p90/p99/max = {order}")
        if ph["sum_s"] + _EPS < ph["max_s"]:
            problems.append(f"{label}: phase {name}: sum_s < max_s")
        ranks = ph.get("ranks")
        if ranks is None:
            continue
        for key in _REQUIRED_RANKS:
            if key not in ranks:
                problems.append(f"{label}: phase {name}: ranks missing "
                                f"'{key}'")
        if any(key not in ranks for key in _REQUIRED_RANKS):
            continue
        if not (ranks["min_s"] <= ranks["mean_s"] + _EPS
                <= ranks["max_s"] + 2 * _EPS):
            problems.append(f"{label}: phase {name}: rank stats out of "
                            f"order (min <= mean <= max)")
        if ranks["mean_s"] > 0 and ranks["imbalance"] + _EPS < 1.0:
            problems.append(f"{label}: phase {name}: imbalance < 1 with a "
                            f"nonzero mean")
    return problems


def phase_map(rep: dict) -> dict[str, dict]:
    return {ph["name"]: ph for ph in rep.get("phases", [])
            if isinstance(ph, dict) and "name" in ph}


def counter_map(rep: dict) -> dict[str, float]:
    return {c["name"]: c["value"] for c in rep.get("counters", [])
            if isinstance(c, dict) and "name" in c and "value" in c}


# F8 accelerator crossover counters (bench/perf_suite.cpp
# run_f8_crossover): the smallest swept con2prim batch at which each
# offload mode reaches the host-parity band. Values are quantized to the
# sweep's geometric x4 steps, so a one-step move is timing jitter on a
# shared runner; more than one step — or the crossover leaving the swept
# range entirely (value 0) — is a real shift in where offload pays off.
_CROSSOVER_COUNTERS = ("perf.f8.crossover_batch.staged",
                       "perf.f8.crossover_batch.resident")
_CROSSOVER_STEP = 4.0


def compare_crossovers(base: dict, cur: dict) -> tuple[list[str], list[str]]:
    """First-class rows for the F8 crossover counters.

    Prints one row per counter present in either report and returns
    (perf_regressions, structural_problems) as message lists.
    """
    base_ctr, cur_ctr = counter_map(base), counter_map(cur)
    perf: list[str] = []
    structural: list[str] = []
    for name in _CROSSOVER_COUNTERS:
        b, c = base_ctr.get(name), cur_ctr.get(name)
        if b is None and c is None:
            continue
        if b is None:
            print(f"perf_report: note: new counter '{name}' = {c:.0f} "
                  f"(not in baseline)")
            continue
        if c is None:
            structural.append(f"counter '{name}' present in baseline but "
                              f"missing from current report")
            continue
        if b == 0 and c == 0:
            print(f"  [ ] {name}: crossover batch outside swept range in "
                  f"both reports")
            continue
        if b == 0:
            print(f"  [ ] {name}: crossover batch entered the swept range "
                  f"at {c:.0f}")
            continue
        if c == 0:
            print(f"  [!] {name}: crossover batch {b:.0f} -> outside the "
                  f"swept range")
            perf.append(f"{name} crossover left the swept batch range "
                        f"(was {b:.0f})")
            continue
        ratio = c / b
        bad = ratio > _CROSSOVER_STEP + _EPS
        print(f"  [{'!' if bad else ' '}] {name}: crossover batch "
              f"{b:.0f} -> {c:.0f} ({ratio:.2g}x)")
        if bad:
            perf.append(f"{name} crossover batch is {ratio:.2g}x the "
                        f"baseline (more than one x{_CROSSOVER_STEP:.0f} "
                        f"sweep step)")
    return perf, structural


def mean_per_sample(ph: dict) -> float:
    return ph["sum_s"] / ph["count"] if ph["count"] else 0.0


def cmd_validate(args: argparse.Namespace) -> int:
    rep = load(args.report)
    problems = validate_report(rep, args.report)
    if problems:
        for p in problems:
            print(f"perf_report: STRUCTURAL: {p}", file=sys.stderr)
        return EXIT_STRUCTURAL
    print(f"perf_report: {args.report}: valid "
          f"({len(rep['phases'])} phases, {len(rep['counters'])} counters, "
          f"git {rep['git_sha']})")
    return EXIT_OK


def compare_reports(base: dict, cur: dict, threshold: float,
                    min_sum: float) -> int:
    """Core of `compare`; prints findings and returns the exit code."""
    problems = (validate_report(base, "baseline")
                + validate_report(cur, "current"))
    if problems:
        for p in problems:
            print(f"perf_report: STRUCTURAL: {p}", file=sys.stderr)
        return EXIT_STRUCTURAL

    base_phases = phase_map(base)
    cur_phases = phase_map(cur)
    missing = sorted(set(base_phases) - set(cur_phases))
    if missing:
        for name in missing:
            print(f"perf_report: STRUCTURAL: phase '{name}' present in "
                  f"baseline but missing from current report",
                  file=sys.stderr)
        return EXIT_STRUCTURAL

    added = sorted(set(cur_phases) - set(base_phases))
    for name in added:
        print(f"perf_report: note: new phase '{name}' (not in baseline)")

    regressions = []
    for name in sorted(base_phases):
        b, c = base_phases[name], cur_phases[name]
        b_mean, c_mean = mean_per_sample(b), mean_per_sample(c)
        if b_mean <= 0.0:
            continue
        ratio = c_mean / b_mean
        gating = b["sum_s"] >= min_sum
        marker = " " if ratio <= 1.0 + threshold else ("!" if gating else "~")
        print(f"  [{marker}] {name}: mean/sample {b_mean:.3e}s -> "
              f"{c_mean:.3e}s ({ratio - 1.0:+.1%} vs baseline)")
        if ratio > 1.0 + threshold and gating:
            regressions.append(f"{name} is {ratio:.2f}x the baseline mean "
                               f"(threshold {1.0 + threshold:.2f}x)")

    crossover_perf, crossover_structural = compare_crossovers(base, cur)
    if crossover_structural:
        for msg in crossover_structural:
            print(f"perf_report: STRUCTURAL: {msg}", file=sys.stderr)
        return EXIT_STRUCTURAL
    regressions.extend(crossover_perf)

    if regressions:
        for msg in regressions:
            print(f"perf_report: REGRESSION: {msg}", file=sys.stderr)
        return EXIT_PERF
    print("perf_report: compare OK "
          f"(threshold {threshold:.0%}, {len(base_phases)} phases)")
    return EXIT_OK


def cmd_compare(args: argparse.Namespace) -> int:
    baseline = args.baseline
    if args.current is None:
        # Single positional: it is the current report, baseline from env.
        args.current, baseline = baseline, os.environ.get(
            "RSHC_PERF_BASELINE", "")
        if not baseline:
            die_structural("compare needs a baseline: pass two reports or "
                           "set RSHC_PERF_BASELINE")
    return compare_reports(load(baseline), load(args.current),
                           args.threshold, args.min_sum)


def cmd_show(args: argparse.Namespace) -> int:
    rep = load(args.report)
    problems = validate_report(rep, args.report)
    if problems:
        for p in problems:
            print(f"perf_report: STRUCTURAL: {p}", file=sys.stderr)
        return EXIT_STRUCTURAL
    hw = rep["hardware"]
    print(f"suite {rep['suite']} | git {rep['git_sha']} | "
          f"{rep['build']['type']} | ranks {rep['ranks']} | "
          f"{hw['threads']} hw threads | {hw['cpu'] or 'unknown cpu'}")
    hdr = (f"{'phase':40s} {'count':>8s} {'sum_s':>10s} {'p50_s':>10s} "
           f"{'p90_s':>10s} {'p99_s':>10s} {'imbal':>6s}")
    print(hdr)
    print("-" * len(hdr))
    for ph in rep["phases"]:
        imbal = ph.get("ranks", {}).get("imbalance")
        imbal_col = f"{imbal:6.2f}" if imbal is not None else f"{'--':>6s}"
        print(f"{ph['name']:40s} {ph['count']:8d} {ph['sum_s']:10.3e} "
              f"{ph['p50_s']:10.3e} {ph['p90_s']:10.3e} "
              f"{ph['p99_s']:10.3e} {imbal_col}")
    for name, value in sorted((c["name"], c["value"])
                              for c in rep["counters"]):
        print(f"{name:40s} {value:14.0f}")
    return EXIT_OK


def cmd_selftest(args: argparse.Namespace) -> int:
    rep = load(args.report)
    problems = validate_report(rep, args.report)
    if problems:
        for p in problems:
            print(f"perf_report: STRUCTURAL: {p}", file=sys.stderr)
        return EXIT_STRUCTURAL

    # Identity compare must pass.
    rc = compare_reports(rep, copy.deepcopy(rep), 0.30, 1e-4)
    if rc != EXIT_OK:
        print("perf_report: selftest: identity compare failed", file=sys.stderr)
        return EXIT_STRUCTURAL

    # A 10x slowdown on the slowest phase must trip the perf gate.
    slowed = copy.deepcopy(rep)
    victim = max(slowed["phases"], key=lambda ph: ph["sum_s"])
    victim["sum_s"] *= 10.0
    rc = compare_reports(rep, slowed, 0.30, 1e-4)
    if rc != EXIT_PERF:
        print(f"perf_report: selftest: injected 10x regression on "
              f"'{victim['name']}' returned {rc}, expected {EXIT_PERF}",
              file=sys.stderr)
        return EXIT_STRUCTURAL

    # A dropped phase must trip the structural gate.
    dropped = copy.deepcopy(rep)
    gone = dropped["phases"].pop()
    rc = compare_reports(rep, dropped, 0.30, 1e-4)
    if rc != EXIT_STRUCTURAL:
        print(f"perf_report: selftest: dropping phase '{gone['name']}' "
              f"returned {rc}, expected {EXIT_STRUCTURAL}", file=sys.stderr)
        return EXIT_STRUCTURAL

    # F8 crossover gates, exercised on the first crossover counter the
    # report actually measured inside the sweep (skipped, with a note, on
    # reports predating the counters or where nothing crossed).
    ctr = counter_map(rep)
    victim_ctr = next((name for name in _CROSSOVER_COUNTERS
                       if ctr.get(name, 0) > 0), None)
    if victim_ctr is None:
        print("perf_report: selftest: no in-sweep F8 crossover counter; "
              "skipping crossover gate checks")
    else:
        def with_crossover(value: float) -> dict:
            mutated = copy.deepcopy(rep)
            for c in mutated["counters"]:
                if c["name"] == victim_ctr:
                    c["value"] = value
            return mutated

        # Two sweep steps (x16) up must trip the perf gate; so must the
        # crossover leaving the swept range (0); dropping the counter
        # entirely is structural.
        cases = ((with_crossover(ctr[victim_ctr] * 16.0), EXIT_PERF,
                  "x16 crossover slip"),
                 (with_crossover(0.0), EXIT_PERF,
                  "crossover leaving the swept range"),
                 ({**copy.deepcopy(rep),
                   "counters": [c for c in copy.deepcopy(rep)["counters"]
                                if c["name"] != victim_ctr]},
                  EXIT_STRUCTURAL, "dropped crossover counter"))
        for mutated, expected, what in cases:
            rc = compare_reports(rep, mutated, 0.30, 1e-4)
            if rc != expected:
                print(f"perf_report: selftest: {what} on '{victim_ctr}' "
                      f"returned {rc}, expected {expected}", file=sys.stderr)
                return EXIT_STRUCTURAL

    print(f"perf_report: selftest OK ({args.report})")
    return EXIT_OK


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_report.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("validate", help="structural checks on one report")
    p.add_argument("report")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("compare", help="diff two reports")
    p.add_argument("baseline",
                   help="baseline report (or the current report when the "
                        "baseline comes from $RSHC_PERF_BASELINE)")
    p.add_argument("current", nargs="?",
                   help="current report; omit to use $RSHC_PERF_BASELINE "
                        "as the baseline")
    p.add_argument("--threshold", type=float, default=0.30,
                   help="relative mean-per-sample growth that fails the "
                        "gate (default 0.30)")
    p.add_argument("--min-sum", type=float, default=1e-4,
                   help="baseline phases whose sum_s is below this never "
                        "gate (default 1e-4 s)")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("show", help="print a report as a table")
    p.add_argument("report")
    p.set_defaults(fn=cmd_show)

    p = sub.add_parser("selftest", help="ctest: gate logic sanity checks")
    p.add_argument("report")
    p.set_defaults(fn=cmd_selftest)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
