#!/usr/bin/env python3
"""Validate, inspect, and diff rshc.perf_report JSON files (BENCH_perf.json).

The report is the single performance artifact produced by bench/perf_suite
(schema in include/rshc/obs/report.hpp and DESIGN.md). This tool is the
CI-side half of the contract.

Subcommands
-----------
validate REPORT
    Structural checks only: schema name/version, required fields, ordered
    percentiles (min <= p50 <= p90 <= p99 <= max), sane rank roll-ups
    (min <= mean <= max, imbalance >= 1 when the phase ran).
compare [BASELINE] CURRENT [--threshold F] [--min-sum S]
    Diff two reports. BASELINE defaults to $RSHC_PERF_BASELINE when
    omitted. Schema mismatch or a phase that disappeared is a *structural*
    regression; a phase whose per-sample mean grew by more than
    --threshold (default 0.30 = 30%, far above timer jitter but well
    below a 2x algorithmic regression) is a *performance* regression.
    Phases whose baseline total is below --min-sum seconds (default 1e-4)
    are reported but never gate: their timings are noise-dominated.
    The F8 crossover counters (perf.f8.crossover_batch.*) are diffed as
    first-class rows alongside the phases: the crossover batch sliding up
    by more than one sweep step (x4), or leaving the swept range entirely
    (value 0), is a performance regression; a counter that disappears is
    structural. The simulation-service counters get the same treatment:
    perf.serve.jobs_per_hour is bigger-is-better (gates when the current
    value drops below baseline / (1 + threshold)) and
    perf.serve.p99_job_latency_ms is smaller-is-better (gates when the
    tail latency grows past baseline * (1 + threshold)).
show REPORT
    Human-readable table of the phases and counters.
timeline TELEMETRY_JSONL [--journal J] [--validate] [--selftest]
    Validate and summarize a live-telemetry stream (rshc.telemetry v1
    JSONL from the obs Sampler, schema in include/rshc/obs/telemetry.hpp).
    Structural checks: leading config record, schema/version on every
    line, required sample fields, strictly increasing seq, non-decreasing
    ts_ms, complete heartbeat blocks. The summary reports sample count,
    steady-state throughput (median of the positive heartbeat zones/sec,
    in MLUPS), sample gaps (a seq skip, or consecutive take times more
    than 2.5x the configured interval apart), and — with --journal — the
    stall count (watchdog events in the rshc.journal stream).
    --validate stops after the structural checks; --selftest additionally
    injects a sample gap (must raise the gap count) and a dropped
    heartbeat (must fail validation) and asserts both are detected.
selftest REPORT
    Self-check used by ctest (perf_report_selftest): validates REPORT,
    then asserts compare(REPORT, REPORT) passes, an injected 10x slowdown
    fails with exit 1, and a dropped phase fails with exit 2. When the
    report carries the telemetry steady-throughput counter, its gates are
    exercised the same way.

Exit codes: 0 = ok, 1 = performance regression, 2 = structural problem
(invalid/missing file, schema mismatch, missing phase). Keeping the two
failure modes distinct lets CI gate hard on structure while treating pure
timing deltas as advisory on noisy shared runners.
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys

SCHEMA_NAME = "rshc.perf_report"
SCHEMA_VERSION = 1

EXIT_OK = 0
EXIT_PERF = 1
EXIT_STRUCTURAL = 2

# A hair of slack for percentile ordering: the p99 interpolation and the
# exact max are computed by different paths and may disagree in the last ulp.
_EPS = 1e-12

_REQUIRED_TOP = ("schema", "schema_version", "suite", "git_sha", "build",
                 "hardware", "ranks", "phases", "counters")
_REQUIRED_PHASE = ("name", "count", "sum_s", "min_s", "max_s", "p50_s",
                   "p90_s", "p99_s")
_REQUIRED_RANKS = ("min_s", "mean_s", "max_s", "imbalance")


def load(path: str) -> dict:
    """Parse a report or die with a structural error."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        die_structural(f"{path}: cannot read report: {exc}")
        raise AssertionError  # unreachable


def die_structural(msg: str) -> None:
    print(f"perf_report: STRUCTURAL: {msg}", file=sys.stderr)
    sys.exit(EXIT_STRUCTURAL)


def validate_report(rep: dict, label: str) -> list[str]:
    """Return a list of structural problems (empty = valid)."""
    problems: list[str] = []
    for key in _REQUIRED_TOP:
        if key not in rep:
            problems.append(f"{label}: missing top-level field '{key}'")
    if rep.get("schema") != SCHEMA_NAME:
        problems.append(f"{label}: schema is {rep.get('schema')!r}, "
                        f"expected {SCHEMA_NAME!r}")
    if rep.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"{label}: schema_version "
                        f"{rep.get('schema_version')!r}, expected "
                        f"{SCHEMA_VERSION}")
    phases = rep.get("phases")
    if not isinstance(phases, list) or not phases:
        problems.append(f"{label}: 'phases' must be a non-empty list")
        return problems
    for ph in phases:
        name = ph.get("name", "<unnamed>")
        for key in _REQUIRED_PHASE:
            if key not in ph:
                problems.append(f"{label}: phase {name}: missing '{key}'")
        if any(key not in ph for key in _REQUIRED_PHASE):
            continue
        if ph["count"] <= 0:
            problems.append(f"{label}: phase {name}: count must be > 0")
        order = (ph["min_s"], ph["p50_s"], ph["p90_s"], ph["p99_s"],
                 ph["max_s"])
        if any(a > b + _EPS for a, b in zip(order, order[1:])):
            problems.append(f"{label}: phase {name}: percentiles out of "
                            f"order: min/p50/p90/p99/max = {order}")
        if ph["sum_s"] + _EPS < ph["max_s"]:
            problems.append(f"{label}: phase {name}: sum_s < max_s")
        ranks = ph.get("ranks")
        if ranks is None:
            continue
        for key in _REQUIRED_RANKS:
            if key not in ranks:
                problems.append(f"{label}: phase {name}: ranks missing "
                                f"'{key}'")
        if any(key not in ranks for key in _REQUIRED_RANKS):
            continue
        if not (ranks["min_s"] <= ranks["mean_s"] + _EPS
                <= ranks["max_s"] + 2 * _EPS):
            problems.append(f"{label}: phase {name}: rank stats out of "
                            f"order (min <= mean <= max)")
        if ranks["mean_s"] > 0 and ranks["imbalance"] + _EPS < 1.0:
            problems.append(f"{label}: phase {name}: imbalance < 1 with a "
                            f"nonzero mean")
    return problems


def phase_map(rep: dict) -> dict[str, dict]:
    return {ph["name"]: ph for ph in rep.get("phases", [])
            if isinstance(ph, dict) and "name" in ph}


def counter_map(rep: dict) -> dict[str, float]:
    return {c["name"]: c["value"] for c in rep.get("counters", [])
            if isinstance(c, dict) and "name" in c and "value" in c}


# F8 accelerator crossover counters (bench/perf_suite.cpp
# run_f8_crossover): the smallest swept con2prim batch at which each
# offload mode reaches the host-parity band. Values are quantized to the
# sweep's geometric x4 steps, so a one-step move is timing jitter on a
# shared runner; more than one step — or the crossover leaving the swept
# range entirely (value 0) — is a real shift in where offload pays off.
_CROSSOVER_COUNTERS = ("perf.f8.crossover_batch.staged",
                       "perf.f8.crossover_batch.resident")
_CROSSOVER_STEP = 4.0


def compare_crossovers(base: dict, cur: dict) -> tuple[list[str], list[str]]:
    """First-class rows for the F8 crossover counters.

    Prints one row per counter present in either report and returns
    (perf_regressions, structural_problems) as message lists.
    """
    base_ctr, cur_ctr = counter_map(base), counter_map(cur)
    perf: list[str] = []
    structural: list[str] = []
    for name in _CROSSOVER_COUNTERS:
        b, c = base_ctr.get(name), cur_ctr.get(name)
        if b is None and c is None:
            continue
        if b is None:
            print(f"perf_report: note: new counter '{name}' = {c:.0f} "
                  f"(not in baseline)")
            continue
        if c is None:
            structural.append(f"counter '{name}' present in baseline but "
                              f"missing from current report")
            continue
        if b == 0 and c == 0:
            print(f"  [ ] {name}: crossover batch outside swept range in "
                  f"both reports")
            continue
        if b == 0:
            print(f"  [ ] {name}: crossover batch entered the swept range "
                  f"at {c:.0f}")
            continue
        if c == 0:
            print(f"  [!] {name}: crossover batch {b:.0f} -> outside the "
                  f"swept range")
            perf.append(f"{name} crossover left the swept batch range "
                        f"(was {b:.0f})")
            continue
        ratio = c / b
        bad = ratio > _CROSSOVER_STEP + _EPS
        print(f"  [{'!' if bad else ' '}] {name}: crossover batch "
              f"{b:.0f} -> {c:.0f} ({ratio:.2g}x)")
        if bad:
            perf.append(f"{name} crossover batch is {ratio:.2g}x the "
                        f"baseline (more than one x{_CROSSOVER_STEP:.0f} "
                        f"sweep step)")
    return perf, structural


# Steady-state solver throughput measured by the live-telemetry sampler
# (bench/perf_suite.cpp: median of the positive heartbeat zones/sec).
# Unlike phase means this is a bigger-is-better counter, so the gate is
# current < baseline / (1 + threshold).
_STEADY_COUNTER = "perf.telemetry.steady_zones_per_sec"


def compare_steady_throughput(base: dict, cur: dict,
                              threshold: float) -> tuple[list[str], list[str]]:
    """First-class row for the telemetry steady-throughput counter."""
    b = counter_map(base).get(_STEADY_COUNTER)
    c = counter_map(cur).get(_STEADY_COUNTER)
    perf: list[str] = []
    structural: list[str] = []
    if b is None and c is None:
        return perf, structural
    if b is None:
        print(f"perf_report: note: new counter '{_STEADY_COUNTER}' = "
              f"{c:.3e} (not in baseline)")
        return perf, structural
    if c is None:
        structural.append(f"counter '{_STEADY_COUNTER}' present in baseline "
                          f"but missing from current report")
        return perf, structural
    if b <= 0.0:
        print(f"  [ ] {_STEADY_COUNTER}: baseline measured no steady "
              f"throughput; nothing to gate")
        return perf, structural
    ratio = c / b
    bad = c < b / (1.0 + threshold)
    print(f"  [{'!' if bad else ' '}] {_STEADY_COUNTER}: {b:.3e} -> "
          f"{c:.3e} zones/s ({ratio - 1.0:+.1%} vs baseline)")
    if bad:
        perf.append(f"{_STEADY_COUNTER} dropped to {ratio:.2f}x the "
                    f"baseline (threshold {1.0 / (1.0 + threshold):.2f}x)")
    return perf, structural


# Latency-hiding halo exchange efficiency (bench/perf_suite.cpp
# run_f6_overlap): sync-vs-overlap time-per-step slope ratio against
# injected message latency, in percent (200 = overlap hides half the
# latency the sync schedule pays). Bigger is better, same gate shape as
# the steady-throughput counter.
_OVERLAP_COUNTER = "perf.f6.overlap_efficiency"


def compare_overlap_efficiency(base: dict, cur: dict,
                               threshold: float) -> tuple[list[str],
                                                          list[str]]:
    """First-class row for the halo-overlap efficiency counter."""
    b = counter_map(base).get(_OVERLAP_COUNTER)
    c = counter_map(cur).get(_OVERLAP_COUNTER)
    perf: list[str] = []
    structural: list[str] = []
    if b is None and c is None:
        return perf, structural
    if b is None:
        print(f"perf_report: note: new counter '{_OVERLAP_COUNTER}' = "
              f"{c:.0f}% (not in baseline)")
        return perf, structural
    if c is None:
        structural.append(f"counter '{_OVERLAP_COUNTER}' present in baseline "
                          f"but missing from current report")
        return perf, structural
    if b <= 0.0:
        print(f"  [ ] {_OVERLAP_COUNTER}: baseline measured no overlap "
              f"efficiency; nothing to gate")
        return perf, structural
    ratio = c / b
    bad = c < b / (1.0 + threshold)
    print(f"  [{'!' if bad else ' '}] {_OVERLAP_COUNTER}: {b:.0f}% -> "
          f"{c:.0f}% ({ratio - 1.0:+.1%} vs baseline)")
    if bad:
        perf.append(f"{_OVERLAP_COUNTER} dropped to {ratio:.2f}x the "
                    f"baseline (threshold {1.0 / (1.0 + threshold):.2f}x); "
                    f"the overlapped exchange is hiding less latency")
    return perf, structural


# Simulation-service gate counters (bench/perf_suite.cpp run_serve): the
# saturating mixed workload's throughput and tail latency. Throughput is
# bigger-is-better like the steady counter; the p99 latency is the one
# smaller-is-better gate in the report, so its check is inverted
# (current > baseline * (1 + threshold) fails).
_SERVE_JOBS_COUNTER = "perf.serve.jobs_per_hour"
_SERVE_P99_COUNTER = "perf.serve.p99_job_latency_ms"


def compare_serve(base: dict, cur: dict,
                  threshold: float) -> tuple[list[str], list[str]]:
    """First-class rows for the simulation-service gate counters."""
    base_ctr, cur_ctr = counter_map(base), counter_map(cur)
    perf: list[str] = []
    structural: list[str] = []
    for name, bigger_is_better in ((_SERVE_JOBS_COUNTER, True),
                                   (_SERVE_P99_COUNTER, False)):
        b, c = base_ctr.get(name), cur_ctr.get(name)
        if b is None and c is None:
            continue
        if b is None:
            print(f"perf_report: note: new counter '{name}' = {c:.0f} "
                  f"(not in baseline)")
            continue
        if c is None:
            structural.append(f"counter '{name}' present in baseline but "
                              f"missing from current report")
            continue
        if b <= 0.0:
            print(f"  [ ] {name}: baseline measured nothing; nothing to "
                  f"gate")
            continue
        ratio = c / b
        if bigger_is_better:
            bad = c < b / (1.0 + threshold)
            unit = "jobs/h"
        else:
            bad = c > b * (1.0 + threshold)
            unit = "ms"
        print(f"  [{'!' if bad else ' '}] {name}: {b:.0f} -> {c:.0f} "
              f"{unit} ({ratio - 1.0:+.1%} vs baseline)")
        if bad:
            direction = "dropped" if bigger_is_better else "grew"
            perf.append(f"{name} {direction} to {ratio:.2f}x the baseline "
                        f"(threshold {threshold:.0%})")
    return perf, structural


def mean_per_sample(ph: dict) -> float:
    return ph["sum_s"] / ph["count"] if ph["count"] else 0.0


def cmd_validate(args: argparse.Namespace) -> int:
    rep = load(args.report)
    problems = validate_report(rep, args.report)
    if problems:
        for p in problems:
            print(f"perf_report: STRUCTURAL: {p}", file=sys.stderr)
        return EXIT_STRUCTURAL
    print(f"perf_report: {args.report}: valid "
          f"({len(rep['phases'])} phases, {len(rep['counters'])} counters, "
          f"git {rep['git_sha']})")
    return EXIT_OK


def compare_reports(base: dict, cur: dict, threshold: float,
                    min_sum: float) -> int:
    """Core of `compare`; prints findings and returns the exit code."""
    problems = (validate_report(base, "baseline")
                + validate_report(cur, "current"))
    if problems:
        for p in problems:
            print(f"perf_report: STRUCTURAL: {p}", file=sys.stderr)
        return EXIT_STRUCTURAL

    base_phases = phase_map(base)
    cur_phases = phase_map(cur)
    missing = sorted(set(base_phases) - set(cur_phases))
    if missing:
        for name in missing:
            print(f"perf_report: STRUCTURAL: phase '{name}' present in "
                  f"baseline but missing from current report",
                  file=sys.stderr)
        return EXIT_STRUCTURAL

    added = sorted(set(cur_phases) - set(base_phases))
    for name in added:
        print(f"perf_report: note: new phase '{name}' (not in baseline)")

    regressions = []
    for name in sorted(base_phases):
        b, c = base_phases[name], cur_phases[name]
        b_mean, c_mean = mean_per_sample(b), mean_per_sample(c)
        if b_mean <= 0.0:
            continue
        ratio = c_mean / b_mean
        gating = b["sum_s"] >= min_sum
        marker = " " if ratio <= 1.0 + threshold else ("!" if gating else "~")
        print(f"  [{marker}] {name}: mean/sample {b_mean:.3e}s -> "
              f"{c_mean:.3e}s ({ratio - 1.0:+.1%} vs baseline)")
        if ratio > 1.0 + threshold and gating:
            regressions.append(f"{name} is {ratio:.2f}x the baseline mean "
                               f"(threshold {1.0 + threshold:.2f}x)")

    crossover_perf, crossover_structural = compare_crossovers(base, cur)
    steady_perf, steady_structural = compare_steady_throughput(
        base, cur, threshold)
    overlap_perf, overlap_structural = compare_overlap_efficiency(
        base, cur, threshold)
    serve_perf, serve_structural = compare_serve(base, cur, threshold)
    if (crossover_structural or steady_structural or overlap_structural
            or serve_structural):
        for msg in (crossover_structural + steady_structural
                    + overlap_structural + serve_structural):
            print(f"perf_report: STRUCTURAL: {msg}", file=sys.stderr)
        return EXIT_STRUCTURAL
    regressions.extend(crossover_perf)
    regressions.extend(steady_perf)
    regressions.extend(overlap_perf)
    regressions.extend(serve_perf)

    if regressions:
        for msg in regressions:
            print(f"perf_report: REGRESSION: {msg}", file=sys.stderr)
        return EXIT_PERF
    print("perf_report: compare OK "
          f"(threshold {threshold:.0%}, {len(base_phases)} phases)")
    return EXIT_OK


def cmd_compare(args: argparse.Namespace) -> int:
    baseline = args.baseline
    if args.current is None:
        # Single positional: it is the current report, baseline from env.
        args.current, baseline = baseline, os.environ.get(
            "RSHC_PERF_BASELINE", "")
        if not baseline:
            die_structural("compare needs a baseline: pass two reports or "
                           "set RSHC_PERF_BASELINE")
    return compare_reports(load(baseline), load(args.current),
                           args.threshold, args.min_sum)


def cmd_show(args: argparse.Namespace) -> int:
    rep = load(args.report)
    problems = validate_report(rep, args.report)
    if problems:
        for p in problems:
            print(f"perf_report: STRUCTURAL: {p}", file=sys.stderr)
        return EXIT_STRUCTURAL
    hw = rep["hardware"]
    print(f"suite {rep['suite']} | git {rep['git_sha']} | "
          f"{rep['build']['type']} | ranks {rep['ranks']} | "
          f"{hw['threads']} hw threads | {hw['cpu'] or 'unknown cpu'}")
    hdr = (f"{'phase':40s} {'count':>8s} {'sum_s':>10s} {'p50_s':>10s} "
           f"{'p90_s':>10s} {'p99_s':>10s} {'imbal':>6s}")
    print(hdr)
    print("-" * len(hdr))
    for ph in rep["phases"]:
        imbal = ph.get("ranks", {}).get("imbalance")
        imbal_col = f"{imbal:6.2f}" if imbal is not None else f"{'--':>6s}"
        print(f"{ph['name']:40s} {ph['count']:8d} {ph['sum_s']:10.3e} "
              f"{ph['p50_s']:10.3e} {ph['p90_s']:10.3e} "
              f"{ph['p99_s']:10.3e} {imbal_col}")
    for name, value in sorted((c["name"], c["value"])
                              for c in rep["counters"]):
        print(f"{name:40s} {value:14.0f}")
    return EXIT_OK


# --- timeline: live-telemetry JSONL ----------------------------------------

TELEMETRY_SCHEMA = "rshc.telemetry"
TELEMETRY_VERSION = 1
JOURNAL_SCHEMA = "rshc.journal"

_REQUIRED_SAMPLE = ("seq", "ts_ms", "pid", "hb", "metrics")
_REQUIRED_HB = ("step", "t", "dt", "zones_per_sec", "ticks")

# A take arriving later than this multiple of the configured interval
# counts as a sample gap (the sampler thread was starved or wedged).
_GAP_FACTOR = 2.5


def load_jsonl(path: str) -> list[dict]:
    """Parse a JSONL stream or die with a structural error."""
    records: list[dict] = []
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    die_structural(f"{path}:{lineno}: bad JSONL: {exc}")
    except OSError as exc:
        die_structural(f"{path}: cannot read telemetry stream: {exc}")
    return records


def validate_timeline(records: list[dict], label: str) -> list[str]:
    """Structural problems in a telemetry stream (empty = valid)."""
    problems: list[str] = []
    if not records:
        problems.append(f"{label}: empty telemetry stream")
        return problems
    config = records[0]
    if config.get("kind") != "config":
        problems.append(f"{label}: first record must be the config line, "
                        f"got kind {config.get('kind')!r}")
    prev_seq = None
    prev_ts = None
    for i, rec in enumerate(records, 1):
        where = f"{label}: record {i}"
        if rec.get("schema") != TELEMETRY_SCHEMA:
            problems.append(f"{where}: schema is {rec.get('schema')!r}, "
                            f"expected {TELEMETRY_SCHEMA!r}")
        if rec.get("v") != TELEMETRY_VERSION:
            problems.append(f"{where}: v is {rec.get('v')!r}, expected "
                            f"{TELEMETRY_VERSION}")
        if rec.get("kind") == "config":
            if i != 1:
                problems.append(f"{where}: config record after samples")
            continue
        if rec.get("kind") != "sample":
            problems.append(f"{where}: unknown kind {rec.get('kind')!r}")
            continue
        missing = [key for key in _REQUIRED_SAMPLE if key not in rec]
        if missing:
            problems.append(f"{where}: sample missing {missing}")
            continue
        # seq is the global take order: strictly increasing. Skips are
        # *gaps* (counted by the summary), not structural corruption.
        if prev_seq is not None and rec["seq"] <= prev_seq:
            problems.append(f"{where}: seq {rec['seq']} not increasing "
                            f"(previous {prev_seq})")
        prev_seq = rec["seq"]
        if prev_ts is not None and rec["ts_ms"] < prev_ts:
            problems.append(f"{where}: ts_ms {rec['ts_ms']} decreases "
                            f"(previous {prev_ts})")
        prev_ts = rec["ts_ms"]
        hb_missing = [key for key in _REQUIRED_HB if key not in rec["hb"]]
        if hb_missing:
            problems.append(f"{where}: heartbeat missing {hb_missing}")
        if not isinstance(rec["metrics"], dict):
            problems.append(f"{where}: metrics is not an object")
    return problems


def timeline_stats(records: list[dict],
                   journal_records: list[dict]) -> dict:
    """Summary statistics of a (structurally valid) telemetry stream."""
    config = next((r for r in records if r.get("kind") == "config"), {})
    samples = [r for r in records if r.get("kind") == "sample"]
    interval_ms = config.get("interval_ms", 0)

    rates = sorted(s["hb"]["zones_per_sec"] for s in samples
                   if s["hb"].get("zones_per_sec", 0) > 0)
    steady = rates[len(rates) // 2] if rates else 0.0

    # One take samples every attached registry at the same ts, so gap
    # detection works on distinct take times; seq skips are dropped takes.
    times = sorted({s["ts_ms"] for s in samples})
    gaps = 0
    if interval_ms > 0:
        gaps += sum(1 for a, b in zip(times, times[1:])
                    if b - a > _GAP_FACTOR * interval_ms)
    seqs = sorted(s["seq"] for s in samples)
    gaps += sum(1 for a, b in zip(seqs, seqs[1:]) if b - a > 1)

    stalls = sum(1 for r in journal_records
                 if r.get("schema") == JOURNAL_SCHEMA
                 and r.get("event") == "watchdog")
    return {
        "samples": len(samples),
        "takes": len(times),
        "interval_ms": interval_ms,
        "steady_zones_per_sec": steady,
        "gaps": gaps,
        "stalls": stalls,
        "max_step": max((s["hb"].get("step", 0) for s in samples),
                        default=0),
    }


def print_timeline_summary(stats: dict, label: str,
                           have_journal: bool) -> None:
    print(f"perf_report: {label}: {stats['samples']} samples over "
          f"{stats['takes']} takes (interval {stats['interval_ms']} ms)")
    print(f"  steady-state throughput: "
          f"{stats['steady_zones_per_sec'] / 1e6:.3f} MLUPS "
          f"(median heartbeat, last step {stats['max_step']})")
    print(f"  sample gaps: {stats['gaps']}")
    if have_journal:
        print(f"  stalls journaled: {stats['stalls']}")


def timeline_selftest(records: list[dict], journal_records: list[dict],
                      label: str) -> int:
    problems = validate_timeline(records, label)
    if problems:
        for p in problems:
            print(f"perf_report: STRUCTURAL: {p}", file=sys.stderr)
        return EXIT_STRUCTURAL

    samples = [r for r in records if r.get("kind") == "sample"]
    base_gaps = timeline_stats(records, journal_records)["gaps"]

    # Injected sample gap: delete one middle take; the gap counter (seq
    # skip and/or stretched take spacing) must move.
    times = sorted({s["ts_ms"] for s in samples})
    if len(times) < 4:
        print(f"perf_report: timeline selftest: only {len(times)} takes; "
              f"skipping gap injection")
    else:
        victim_ts = times[len(times) // 2]
        gapped = [r for r in records
                  if r.get("kind") != "sample" or r["ts_ms"] != victim_ts]
        if validate_timeline(gapped, "gapped"):
            print("perf_report: timeline selftest: gap injection broke "
                  "structural validity", file=sys.stderr)
            return EXIT_STRUCTURAL
        gapped_gaps = timeline_stats(gapped, journal_records)["gaps"]
        if gapped_gaps <= base_gaps:
            print(f"perf_report: timeline selftest: injected sample gap "
                  f"not detected (gaps {base_gaps} -> {gapped_gaps})",
                  file=sys.stderr)
            return EXIT_STRUCTURAL

    # Dropped heartbeat: a sample without its hb block must fail
    # validation.
    broken = copy.deepcopy(records)
    victim = next((r for r in broken if r.get("kind") == "sample"), None)
    if victim is None:
        print("perf_report: timeline selftest: no samples to mutate",
              file=sys.stderr)
        return EXIT_STRUCTURAL
    del victim["hb"]
    if not validate_timeline(broken, "no-heartbeat"):
        print("perf_report: timeline selftest: dropped heartbeat not "
              "detected", file=sys.stderr)
        return EXIT_STRUCTURAL

    print(f"perf_report: timeline selftest OK ({label})")
    return EXIT_OK


def cmd_timeline(args: argparse.Namespace) -> int:
    records = load_jsonl(args.telemetry)
    journal_records = load_jsonl(args.journal) if args.journal else []
    if args.selftest:
        return timeline_selftest(records, journal_records, args.telemetry)
    problems = validate_timeline(records, args.telemetry)
    if problems:
        for p in problems:
            print(f"perf_report: STRUCTURAL: {p}", file=sys.stderr)
        return EXIT_STRUCTURAL
    if args.validate:
        print(f"perf_report: {args.telemetry}: valid telemetry stream "
              f"({sum(1 for r in records if r.get('kind') == 'sample')} "
              f"samples)")
        return EXIT_OK
    print_timeline_summary(timeline_stats(records, journal_records),
                           args.telemetry, bool(args.journal))
    return EXIT_OK


def cmd_selftest(args: argparse.Namespace) -> int:
    rep = load(args.report)
    problems = validate_report(rep, args.report)
    if problems:
        for p in problems:
            print(f"perf_report: STRUCTURAL: {p}", file=sys.stderr)
        return EXIT_STRUCTURAL

    # Identity compare must pass.
    rc = compare_reports(rep, copy.deepcopy(rep), 0.30, 1e-4)
    if rc != EXIT_OK:
        print("perf_report: selftest: identity compare failed", file=sys.stderr)
        return EXIT_STRUCTURAL

    # A 10x slowdown on the slowest phase must trip the perf gate.
    slowed = copy.deepcopy(rep)
    victim = max(slowed["phases"], key=lambda ph: ph["sum_s"])
    victim["sum_s"] *= 10.0
    rc = compare_reports(rep, slowed, 0.30, 1e-4)
    if rc != EXIT_PERF:
        print(f"perf_report: selftest: injected 10x regression on "
              f"'{victim['name']}' returned {rc}, expected {EXIT_PERF}",
              file=sys.stderr)
        return EXIT_STRUCTURAL

    # A dropped phase must trip the structural gate.
    dropped = copy.deepcopy(rep)
    gone = dropped["phases"].pop()
    rc = compare_reports(rep, dropped, 0.30, 1e-4)
    if rc != EXIT_STRUCTURAL:
        print(f"perf_report: selftest: dropping phase '{gone['name']}' "
              f"returned {rc}, expected {EXIT_STRUCTURAL}", file=sys.stderr)
        return EXIT_STRUCTURAL

    # F8 crossover gates, exercised on the first crossover counter the
    # report actually measured inside the sweep (skipped, with a note, on
    # reports predating the counters or where nothing crossed).
    ctr = counter_map(rep)
    victim_ctr = next((name for name in _CROSSOVER_COUNTERS
                       if ctr.get(name, 0) > 0), None)
    if victim_ctr is None:
        print("perf_report: selftest: no in-sweep F8 crossover counter; "
              "skipping crossover gate checks")
    else:
        def with_crossover(value: float) -> dict:
            mutated = copy.deepcopy(rep)
            for c in mutated["counters"]:
                if c["name"] == victim_ctr:
                    c["value"] = value
            return mutated

        # Two sweep steps (x16) up must trip the perf gate; so must the
        # crossover leaving the swept range (0); dropping the counter
        # entirely is structural.
        cases = ((with_crossover(ctr[victim_ctr] * 16.0), EXIT_PERF,
                  "x16 crossover slip"),
                 (with_crossover(0.0), EXIT_PERF,
                  "crossover leaving the swept range"),
                 ({**copy.deepcopy(rep),
                   "counters": [c for c in copy.deepcopy(rep)["counters"]
                                if c["name"] != victim_ctr]},
                  EXIT_STRUCTURAL, "dropped crossover counter"))
        for mutated, expected, what in cases:
            rc = compare_reports(rep, mutated, 0.30, 1e-4)
            if rc != expected:
                print(f"perf_report: selftest: {what} on '{victim_ctr}' "
                      f"returned {rc}, expected {expected}", file=sys.stderr)
                return EXIT_STRUCTURAL

    # Telemetry steady-throughput gates, exercised when the report carries
    # the counter: halving the throughput must trip the perf gate,
    # dropping the counter is structural.
    steady = counter_map(rep).get(_STEADY_COUNTER, 0)
    if steady <= 0:
        print("perf_report: selftest: no telemetry steady-throughput "
              "counter; skipping its gate checks")
    else:
        halved = copy.deepcopy(rep)
        for c in halved["counters"]:
            if c["name"] == _STEADY_COUNTER:
                c["value"] = steady / 2.0
        rc = compare_reports(rep, halved, 0.30, 1e-4)
        if rc != EXIT_PERF:
            print(f"perf_report: selftest: halved steady throughput "
                  f"returned {rc}, expected {EXIT_PERF}", file=sys.stderr)
            return EXIT_STRUCTURAL
        dropped_ctr = copy.deepcopy(rep)
        dropped_ctr["counters"] = [c for c in dropped_ctr["counters"]
                                   if c["name"] != _STEADY_COUNTER]
        rc = compare_reports(rep, dropped_ctr, 0.30, 1e-4)
        if rc != EXIT_STRUCTURAL:
            print(f"perf_report: selftest: dropped steady-throughput "
                  f"counter returned {rc}, expected {EXIT_STRUCTURAL}",
                  file=sys.stderr)
            return EXIT_STRUCTURAL

    # Overlap-efficiency gates, exercised when the report carries the
    # counter: halving the efficiency must trip the perf gate, dropping
    # the counter is structural.
    overlap = counter_map(rep).get(_OVERLAP_COUNTER, 0)
    if overlap <= 0:
        print("perf_report: selftest: no overlap-efficiency counter; "
              "skipping its gate checks")
    else:
        halved = copy.deepcopy(rep)
        for c in halved["counters"]:
            if c["name"] == _OVERLAP_COUNTER:
                c["value"] = overlap / 2.0
        rc = compare_reports(rep, halved, 0.30, 1e-4)
        if rc != EXIT_PERF:
            print(f"perf_report: selftest: halved overlap efficiency "
                  f"returned {rc}, expected {EXIT_PERF}", file=sys.stderr)
            return EXIT_STRUCTURAL
        dropped_ctr = copy.deepcopy(rep)
        dropped_ctr["counters"] = [c for c in dropped_ctr["counters"]
                                   if c["name"] != _OVERLAP_COUNTER]
        rc = compare_reports(rep, dropped_ctr, 0.30, 1e-4)
        if rc != EXIT_STRUCTURAL:
            print(f"perf_report: selftest: dropped overlap-efficiency "
                  f"counter returned {rc}, expected {EXIT_STRUCTURAL}",
                  file=sys.stderr)
            return EXIT_STRUCTURAL

    # Simulation-service gates, exercised when the report carries the
    # counters: halving the throughput and 10x-ing the p99 tail must each
    # trip the perf gate (the p99 check proves the smaller-is-better
    # direction is honored), and dropping either counter is structural.
    serve_jobs = counter_map(rep).get(_SERVE_JOBS_COUNTER, 0)
    serve_p99 = counter_map(rep).get(_SERVE_P99_COUNTER, 0)
    if serve_jobs <= 0 or serve_p99 <= 0:
        print("perf_report: selftest: no simulation-service counters; "
              "skipping their gate checks")
    else:
        def with_counter(name: str, value: float) -> dict:
            mutated = copy.deepcopy(rep)
            for c in mutated["counters"]:
                if c["name"] == name:
                    c["value"] = value
            return mutated

        def without_counter(name: str) -> dict:
            mutated = copy.deepcopy(rep)
            mutated["counters"] = [c for c in mutated["counters"]
                                   if c["name"] != name]
            return mutated

        cases = ((with_counter(_SERVE_JOBS_COUNTER, serve_jobs / 2.0),
                  EXIT_PERF, "halved serve throughput"),
                 (with_counter(_SERVE_P99_COUNTER, serve_p99 * 10.0),
                  EXIT_PERF, "10x serve p99 latency"),
                 (without_counter(_SERVE_JOBS_COUNTER), EXIT_STRUCTURAL,
                  "dropped serve throughput counter"),
                 (without_counter(_SERVE_P99_COUNTER), EXIT_STRUCTURAL,
                  "dropped serve p99 counter"))
        for mutated, expected, what in cases:
            rc = compare_reports(rep, mutated, 0.30, 1e-4)
            if rc != expected:
                print(f"perf_report: selftest: {what} returned {rc}, "
                      f"expected {expected}", file=sys.stderr)
                return EXIT_STRUCTURAL

    print(f"perf_report: selftest OK ({args.report})")
    return EXIT_OK


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_report.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("validate", help="structural checks on one report")
    p.add_argument("report")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("compare", help="diff two reports")
    p.add_argument("baseline",
                   help="baseline report (or the current report when the "
                        "baseline comes from $RSHC_PERF_BASELINE)")
    p.add_argument("current", nargs="?",
                   help="current report; omit to use $RSHC_PERF_BASELINE "
                        "as the baseline")
    p.add_argument("--threshold", type=float, default=0.30,
                   help="relative mean-per-sample growth that fails the "
                        "gate (default 0.30)")
    p.add_argument("--min-sum", type=float, default=1e-4,
                   help="baseline phases whose sum_s is below this never "
                        "gate (default 1e-4 s)")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("show", help="print a report as a table")
    p.add_argument("report")
    p.set_defaults(fn=cmd_show)

    p = sub.add_parser("timeline",
                       help="validate/summarize a telemetry JSONL stream")
    p.add_argument("telemetry", help="rshc.telemetry v1 JSONL stream")
    p.add_argument("--journal", default=None,
                   help="rshc.journal v1 JSONL stream (enables the stall "
                        "count)")
    p.add_argument("--validate", action="store_true",
                   help="structural checks only, no summary")
    p.add_argument("--selftest", action="store_true",
                   help="assert an injected sample gap and a dropped "
                        "heartbeat are detected")
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser("selftest", help="ctest: gate logic sanity checks")
    p.add_argument("report")
    p.set_defaults(fn=cmd_selftest)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
