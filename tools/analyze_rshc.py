#!/usr/bin/env python3
"""Static analysis for rshc's concurrency and FP-determinism contracts.

Where tools/lint_rshc.py is a line-regex linter, this tool checks the
*cross-cutting* contracts: per-TU compile-flag recipes (via the build's
compile_commands.json), consistency between an atomic's declared ordering
comment and the memory_order_* arguments actually used at its call sites,
and the acquisition order of the annotated rshc::Mutex locks. The last
rule class re-checks obs-raii-only / raw-new-solver on the clang AST when
the libclang Python bindings are importable, and degrades to a printed
skip notice when they are not (the pure-Python rules above never skip).

Usage
-----
    analyze_rshc.py validate [--build-dir DIR]    # default mode
    analyze_rshc.py selftest

Exit codes (validate; the smallest failing class wins when several fail)
------------------------------------------------------------------------
    0   clean
    2   structural/usage error (bad arguments, unreadable build dir)
    3   flag-recipe       a deterministic-core TU (srhd/srmhd kernels_*,
                          riemann faces_*, solver rhs_core) compiled
                          without an effective -ffp-contract=off, or a
                          recipe pattern that no longer matches any TU
                          (a rename would otherwise silently drop the
                          bitwise-identity guarantee the device/SIMD
                          equivalence tests rely on)
    4   atomic-ordering   a memory_order_* used at a call site that the
                          declaration's ordering comment does not declare
                          ("ordering" in the comment is a wildcard)
    5   lock-order        a cycle in the LockGuard acquisition graph
                          (nodes are module:member, e.g. the sanctioned
                          obs:mutex_ -> obs:mutex edge from the tracer)
    6   ast-rule          libclang-backed obs-raii-only / raw-new-solver

`selftest` injects seeded violations into each pure-Python rule — a
kernel TU that lost -ffp-contract=off, an atomic used with an ordering
its comment does not declare, an inverted lock pair — and exits nonzero
unless every one is caught and classified with the exit code above.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import re
import shlex
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_BY_RULE = {
    "flag-recipe": 3,
    "atomic-ordering": 4,
    "lock-order": 5,
    "obs-raii-only": 6,
    "raw-new-solver": 6,
}


@dataclasses.dataclass
class Violation:
    rule: str
    where: str  # "file:line" or "file"
    msg: str

    def __str__(self) -> str:
        return f"{self.where}: [{self.rule}] {self.msg}"


# ---------------------------------------------------------------------------
# Shared text machinery
# ---------------------------------------------------------------------------

def strip_comments(text: str) -> str:
    """Replace comments and string/char literal *contents* with spaces,
    preserving every newline so line numbers survive the mapping."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i + 1 < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def module_of(rel: str) -> str:
    """Module key for ordering/lock matching: include/rshc/X/... and
    src/X/... both map to X; top-level files map to their stem."""
    p = Path(rel)
    parts = p.parts
    if parts[:2] == ("include", "rshc"):
        rest = parts[2:]
    elif parts[:1] == ("src",):
        rest = parts[1:]
    else:
        rest = parts
    return rest[0] if len(rest) > 1 else p.stem


def library_files() -> dict[str, str]:
    """rel-path -> text for every library source/header."""
    files = {}
    for glob in ("include/**/*.hpp", "src/**/*.hpp", "src/**/*.cpp"):
        for f in sorted(REPO.glob(glob)):
            files[str(f.relative_to(REPO))] = f.read_text(encoding="utf-8")
    return files


# ---------------------------------------------------------------------------
# Rule: flag-recipe (exit 3)
# ---------------------------------------------------------------------------

# TUs that compile the shared deterministic cores (riemann::detail /
# rhs_core) for more than one backend and must therefore agree bitwise:
# contraction is pinned *off* on every one of them, whatever -march says.
RECIPE_TUS = (
    r"src/srhd/kernels_\w+\.cpp$",
    r"src/srmhd/kernels_\w+\.cpp$",
    r"src/riemann/faces_\w+\.cpp$",
    r"src/solver/rhs_core\.cpp$",
)


def effective_fp_contract(args: list[str]) -> str:
    """Final fp-contract state after walking the flag list in order
    (later flags win; -ffast-math turns contraction back on)."""
    state = "default"
    for a in args:
        if a.startswith("-ffp-contract="):
            state = a.split("=", 1)[1]
        elif a == "-ffast-math":
            state = "fast"
        elif a == "-fno-fast-math" and state == "fast":
            state = "default"
    return state


def check_flag_recipe(db: list[dict]) -> list[Violation]:
    violations = []
    matched = {pat: 0 for pat in RECIPE_TUS}
    for entry in db:
        fname = entry.get("file", "")
        rel = fname
        for anchor in ("src/", "tests/", "bench/"):
            idx = fname.find("/" + anchor)
            if idx >= 0:
                rel = fname[idx + 1:]
                break
        pat = next((p for p in RECIPE_TUS if re.search(p, rel)), None)
        if pat is None:
            continue
        matched[pat] += 1
        if "arguments" in entry:
            args = list(entry["arguments"])
        else:
            args = shlex.split(entry.get("command", ""))
        state = effective_fp_contract(args)
        if state != "off":
            violations.append(Violation(
                "flag-recipe", rel,
                f"deterministic-core TU compiles with fp-contract "
                f"'{state}' (needs an effective -ffp-contract=off; see "
                f"src/srhd/CMakeLists.txt for the recipe)"))
    for pat, count in matched.items():
        if count == 0:
            violations.append(Violation(
                "flag-recipe", pat,
                "recipe pattern matches no TU in compile_commands.json "
                "(core TU renamed without updating the recipe?)"))
    return violations


# ---------------------------------------------------------------------------
# Rule: atomic-ordering (exit 4)
# ---------------------------------------------------------------------------

ORDERINGS = ("relaxed", "acquire", "release", "acq_rel", "seq_cst")
ORDERING_WORD = re.compile(
    r"\b(" + "|".join(ORDERINGS) + r"|ordering)\b", re.IGNORECASE)
MEMORY_ORDER = re.compile(r"std::memory_order_(" + "|".join(ORDERINGS) + r")")

# receiver(.|->)method( — receiver may be a no-arg accessor call
# (`tracing_flag().load(...)`) or an indexed element (`bins[i].load(...)`).
ATOMIC_CALL = re.compile(
    r"(\w+)\s*(\(\s*\))?\s*(?:\[[^\]]*\])?\s*(?:\.|->)\s*"
    r"(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")

FUNC_DEF = re.compile(r"(\w+)\s*\([^;{}]*\)\s*(?:const\s*)?(?:noexcept\s*)?"
                      r"(?:->\s*[\w:&<>]+\s*)?\{")


def find_atomic_decls(raw_lines: list[str], stripped_lines: list[str]):
    """Yield (lineno, name, declared_set, wildcard) for every std::atomic
    object declaration (balanced-angle matched, nested templates included).
    `declared_set` comes from the ordering words in the three lines of
    comment above the declaration (plus the declaration line itself)."""
    for lineno, stripped in enumerate(stripped_lines, start=1):
        if "std::atomic" not in stripped or re.search(r"\busing\s", stripped):
            continue
        name = None
        for m in re.finditer(r"[\w:]+\s*<", stripped):
            depth, i = 1, m.end()
            while i < len(stripped) and depth > 0:
                if stripped[i] == "<":
                    depth += 1
                elif stripped[i] == ">":
                    depth -= 1
                i += 1
            if depth != 0:
                continue
            if "std::atomic" not in stripped[m.start():i]:
                continue
            rest = stripped[i:].lstrip()
            nm = re.match(r"\w+", rest)
            if rest[:1] not in ("&", "*") and nm:
                name = nm.group(0)
                break
        if name is None:
            continue
        window = raw_lines[max(0, lineno - 4):lineno]
        declared, wildcard = set(), False
        for line in window:
            for w in ORDERING_WORD.findall(line):
                w = w.lower()
                if w == "ordering":
                    wildcard = True
                else:
                    declared.add(w)
        aliases = [name]
        # Function-local static: call sites go through the enclosing
        # accessor (`flag` declared inside tracing_flag() is only ever
        # touched as `tracing_flag().load(...)`).
        if re.match(r"\s*static\b", stripped):
            for back in range(lineno - 2, max(-1, lineno - 16), -1):
                fm = FUNC_DEF.search(stripped_lines[back])
                if fm:
                    aliases.append(fm.group(1))
                    break
        yield lineno, aliases, declared, wildcard


def check_atomic_ordering(files: dict[str, str]) -> list[Violation]:
    # module -> receiver name -> (declared set, wildcard, decl site)
    decls: dict[str, dict[str, tuple[set, bool, str]]] = {}
    for rel, text in files.items():
        raw_lines = text.splitlines()
        stripped_lines = strip_comments(text).splitlines()
        mod = module_of(rel)
        for lineno, aliases, declared, wildcard in find_atomic_decls(
                raw_lines, stripped_lines):
            if not declared and not wildcard:
                continue  # missing comment entirely: lint_rshc's domain
            for alias in aliases:
                prev = decls.setdefault(mod, {}).get(alias)
                if prev:  # same receiver name declared twice: union
                    declared = declared | prev[0]
                    wildcard = wildcard or prev[1]
                decls[mod][alias] = (declared, wildcard, f"{rel}:{lineno}")

    violations = []
    for rel, text in files.items():
        # Collapse the space runs stripped comments leave behind: the
        # call-site regex's stacked optional groups backtrack quadratically
        # across them otherwise (newlines survive, so line numbers hold).
        stripped = re.sub(r"[ \t]{2,}", " ", strip_comments(text))
        mod = module_of(rel)
        mod_decls = decls.get(mod, {})
        for m in ATOMIC_CALL.finditer(stripped):
            receiver = m.group(1)
            info = mod_decls.get(receiver)
            if info is None:
                continue  # unknown receiver (parameter, foreign module)
            declared, wildcard, decl_site = info
            if wildcard:
                continue
            # Balanced-paren scan over the (possibly multi-line) call args.
            depth, i = 1, m.end()
            while i < len(stripped) and depth > 0:
                if stripped[i] == "(":
                    depth += 1
                elif stripped[i] == ")":
                    depth -= 1
                i += 1
            args = stripped[m.end():i]
            lineno = stripped.count("\n", 0, m.start()) + 1
            for used in MEMORY_ORDER.findall(args):
                if used not in declared:
                    violations.append(Violation(
                        "atomic-ordering", f"{rel}:{lineno}",
                        f"'{receiver}.{m.group(3)}' uses memory_order_"
                        f"{used} but the declaration comment "
                        f"({decl_site}) declares only "
                        f"{{{', '.join(sorted(declared)) or 'nothing'}}}"))
    return violations


# ---------------------------------------------------------------------------
# Rule: lock-order (exit 5)
# ---------------------------------------------------------------------------

LOCK_ACQ = re.compile(r"\bLockGuard\s+\w+\s*\(([^)]+)\)")


def lock_node(expr: str, mod: str) -> str:
    """module:member-tail — `ring->mutex` and `box.mutex` in module obs
    both name obs:mutex; distinct objects of one member are one node
    (locking two instances of the same member concurrently would need an
    address-ordering protocol this codebase deliberately avoids)."""
    tail = re.split(r"->|\.", expr.strip())[-1].strip()
    tail = re.sub(r"\(\s*\)$", "", tail).strip()
    return f"{mod}:{tail}"


def extract_lock_edges(files: dict[str, str]):
    """Directed acquired-before edges from a textual guard-stack walk.
    Returns {(from, to): example "file:line"}."""
    edges: dict[tuple[str, str], str] = {}
    for rel, text in files.items():
        mod = module_of(rel)
        stack: list[tuple[int, str]] = []  # (depth at acquisition, node)
        depth = 0
        for lineno, line in enumerate(strip_comments(text).splitlines(),
                                      start=1):
            # Braces and acquisitions interleave in character order so a
            # one-line `{ LockGuard l(m); }` scope releases on its own line.
            acqs = {m.start(): m for m in LOCK_ACQ.finditer(line)}
            for pos, ch in enumerate(line):
                m = acqs.get(pos)
                if m:
                    node = lock_node(m.group(1), mod)
                    for _, held in stack:
                        if held != node:
                            edges.setdefault((held, node), f"{rel}:{lineno}")
                    stack.append((depth, node))
                if ch == "{":
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    if depth <= 0:  # function boundary
                        depth = 0
                        stack.clear()
                    else:
                        # A guard acquired at depth d dies when its scope
                        # closes, i.e. once depth falls below d.
                        while stack and stack[-1][0] > depth:
                            stack.pop()
    return edges


def check_lock_order(files: dict[str, str]) -> list[Violation]:
    edges = extract_lock_edges(files)
    graph: dict[str, list[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, []).append(b)

    violations = []
    # DFS cycle detection with path recovery.
    WHITE, GREY, BLACK = 0, 1, 2
    color = dict.fromkeys(graph, WHITE)
    path: list[str] = []

    def dfs(u: str) -> list[str] | None:
        color[u] = GREY
        path.append(u)
        for v in graph.get(u, []):
            if color.get(v, WHITE) == GREY:
                return path[path.index(v):] + [v]
            if color.get(v, WHITE) == WHITE:
                cyc = dfs(v)
                if cyc:
                    return cyc
        path.pop()
        color[u] = BLACK
        return None

    for u in list(graph):
        if color.get(u, WHITE) == WHITE:
            cycle = dfs(u)
            if cycle:
                sites = [edges.get((a, b), "?")
                         for a, b in zip(cycle, cycle[1:])]
                violations.append(Violation(
                    "lock-order", sites[0],
                    "lock acquisition cycle: " + " -> ".join(cycle)
                    + " (edges at " + ", ".join(sites) + ")"))
                path.clear()
    return violations


# ---------------------------------------------------------------------------
# Rule: AST checks via libclang (exit 6, graceful skip)
# ---------------------------------------------------------------------------

OBS_DIRECT_NAMES = {"record_span", "record_flow", "flow_begin", "flow_end"}
OBS_RAII_TYPES = {"TraceScope", "PhaseScope"}


def check_ast_rules(build_dir: Path):
    """AST-grade re-check of obs-raii-only and raw-new-solver: unlike the
    line regexes these see through formatting, match real call expressions,
    and skip code reached only via the sanctioned RSHC_* macros (whose
    spelling location is inside the obs headers). Returns (violations,
    skip_notice); skip_notice is set when libclang is unusable here."""
    try:
        import clang.cindex as ci  # noqa: PLC0415
    except ImportError:
        return [], ("libclang Python bindings not importable; "
                    "AST rules skipped (run in the CI static-analysis lane)")
    try:
        cdb = ci.CompilationDatabase.fromDirectory(str(build_dir))
        index = ci.Index.create()
    except Exception as e:  # noqa: BLE001 - degrade, never crash validate
        return [], f"libclang unavailable ({e}); AST rules skipped"

    violations = []
    try:
        for src in sorted(REPO.glob("src/**/*.cpp")):
            rel = str(src.relative_to(REPO))
            in_solver = rel.startswith("src/solver")
            in_obs = rel.startswith("src/obs")
            cmds = cdb.getCompileCommands(str(src))
            if not cmds:
                continue
            args = [a for a in list(cmds[0].arguments)[1:-1]
                    if a not in ("-c", "-o") and not a.endswith(".o")
                    and not a.endswith(".cpp")]
            tu = index.parse(str(src), args=args)

            def walk(cursor):
                for c in cursor.get_children():
                    loc = c.location
                    if loc.file is None or str(loc.file) != str(src):
                        walk(c)
                        continue
                    if in_solver and c.kind in (
                            ci.CursorKind.CXX_NEW_EXPR,
                            ci.CursorKind.CXX_DELETE_EXPR):
                        violations.append(Violation(
                            "raw-new-solver", f"{rel}:{loc.line}",
                            "raw new/delete expression in solver code"))
                    if not in_obs and c.kind == ci.CursorKind.CALL_EXPR \
                            and c.spelling in OBS_DIRECT_NAMES:
                        violations.append(Violation(
                            "obs-raii-only", f"{rel}:{loc.line}",
                            f"direct call to obs::{c.spelling}; use the "
                            "RSHC_OBS_* / RSHC_TRACE_SCOPE macros"))
                    if not in_obs and c.kind == ci.CursorKind.VAR_DECL \
                            and c.type.spelling.split("::")[-1] \
                            in OBS_RAII_TYPES:
                        violations.append(Violation(
                            "obs-raii-only", f"{rel}:{loc.line}",
                            f"direct {c.type.spelling} construction; use "
                            "RSHC_TRACE_SCOPE / RSHC_OBS_PHASE"))
                    walk(c)

            walk(tu.cursor)
    except Exception as e:  # noqa: BLE001
        return [], f"libclang parse failed ({e}); AST rules skipped"
    # Macro-expanded uses land on the macro call line; filter lines that
    # visibly go through the sanctioned macros.
    filtered = []
    for v in violations:
        rel, _, line = v.where.partition(":")
        text = (REPO / rel).read_text(encoding="utf-8").splitlines()
        if "RSHC_" in text[int(line) - 1]:
            continue
        filtered.append(v)
    return filtered, None


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def load_compile_db(build_dir: Path) -> list[dict] | None:
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        return None
    return json.loads(db_path.read_text(encoding="utf-8"))


def validate(build_dir: Path, explicit_build_dir: bool) -> int:
    violations: list[Violation] = []
    notices: list[str] = []

    db = load_compile_db(build_dir)
    if db is None:
        if explicit_build_dir:
            print(f"analyze_rshc: no compile_commands.json under "
                  f"{build_dir}", file=sys.stderr)
            return EXIT_USAGE
        notices.append(f"no compile_commands.json under {build_dir}; "
                       "flag-recipe rule skipped (configure first)")
    else:
        violations += check_flag_recipe(db)

    files = library_files()
    violations += check_atomic_ordering(files)
    violations += check_lock_order(files)

    ast_violations, skip = check_ast_rules(build_dir)
    violations += ast_violations
    if skip:
        notices.append(skip)

    for n in notices:
        print(f"analyze_rshc: note: {n}")
    if violations:
        print(f"analyze_rshc: {len(violations)} violation(s)")
        for v in violations:
            print(f"  {v}")
        return min(EXIT_BY_RULE[v.rule] for v in violations)
    print(f"analyze_rshc: clean ({len(files)} library files"
          + (f", {len(db)} TUs" if db is not None else "") + ")")
    return EXIT_OK


# --- selftest ----------------------------------------------------------------

def selftest() -> int:
    failures: list[str] = []

    def expect(label: str, violations: list[Violation], rule: str,
               count: int, exit_code: int) -> None:
        got = [v for v in violations if v.rule == rule]
        if len(got) != count:
            failures.append(f"{label}: expected {count} [{rule}], got "
                            f"{len(violations)}: "
                            f"{[str(v) for v in violations]}")
        elif got and EXIT_BY_RULE[rule] != exit_code:
            failures.append(f"{label}: [{rule}] classified as exit "
                            f"{EXIT_BY_RULE[rule]}, expected {exit_code}")

    # flag-recipe: kernels TU that lost the flag, faces TU where a later
    # -ffast-math re-enables contraction, plus clean TUs covering the
    # other patterns.
    gxx = "/usr/bin/c++ -O3 -march=native"
    db = [
        {"file": "/r/src/srhd/kernels_simd.cpp",
         "command": f"{gxx} -c kernels_simd.cpp"},                 # seeded
        {"file": "/r/src/riemann/faces_simd.cpp",
         "command": f"{gxx} -ffp-contract=off -ffast-math -c f.cpp"},  # seeded
        {"file": "/r/src/srmhd/kernels_scalar.cpp",
         "command": f"{gxx} -ffp-contract=off -c k.cpp"},
        {"file": "/r/src/solver/rhs_core.cpp",
         "arguments": ["c++", "-ffp-contract=off", "-c", "rhs_core.cpp"]},
        {"file": "/r/src/solver/fv_solver.cpp",
         "command": f"{gxx} -c fv_solver.cpp"},  # not a recipe TU: exempt
    ]
    expect("flag-recipe seeded", check_flag_recipe(db), "flag-recipe", 2, 3)
    clean_db = [dict(e) for e in db]
    clean_db[0]["command"] += " -ffp-contract=off"
    clean_db[1]["command"] = f"{gxx} -ffast-math -ffp-contract=off -c f.cpp"
    expect("flag-recipe clean", check_flag_recipe(clean_db),
           "flag-recipe", 0, 3)
    missing = [e for e in clean_db if "srmhd" not in e["file"]]
    expect("flag-recipe coverage", check_flag_recipe(missing),
           "flag-recipe", 1, 3)

    # atomic-ordering: declared relaxed, used acquire (seeded); a wildcard
    # comment and a matching use stay clean; the function-local-static
    # alias routes uses of `flag_fn()` back to the declaration.
    files = {
        "src/x/a.cpp": (
            "// relaxed: event counter, eventual visibility only\n"
            "std::atomic<int> hits{0};\n"
            # line 3 is the seeded violation: acquire vs declared relaxed
            "void f() { hits.fetch_add(1, std::memory_order_acquire); }\n"
            "// ordering chosen per call site (see f/g)\n"
            "std::atomic<int> mixed{0};\n"
            "void g() { mixed.store(1, std::memory_order_release); }\n"),
        "src/x/b.cpp": (
            "std::atomic<bool>& flag_fn() {\n"
            "  // relaxed: mode switch, not a synchronization point\n"
            "  static std::atomic<bool> flag{false};\n"
            "  return flag;\n"
            "}\n"
            "void h() { flag_fn().store(true, "
            "std::memory_order_release); }\n"),  # seeded via alias
    }
    expect("atomic-ordering seeded", check_atomic_ordering(files),
           "atomic-ordering", 2, 4)
    clean_files = {
        "src/x/a.cpp": (
            "// relaxed: event counter\n"
            "std::atomic<int> hits{0};\n"
            "void f() { hits.fetch_add(1, std::memory_order_relaxed); }\n")}
    expect("atomic-ordering clean", check_atomic_ordering(clean_files),
           "atomic-ordering", 0, 4)

    # lock-order: f takes alpha_ then beta_, g takes beta_ then alpha_.
    files = {
        "src/y/locks.cpp": (
            "void f() {\n"
            "  LockGuard a(alpha_);\n"
            "  LockGuard b(beta_);\n"
            "}\n"
            "void g() {\n"
            "  LockGuard b(beta_);\n"
            "  LockGuard a(alpha_);\n"
            "}\n")}
    expect("lock-order seeded", check_lock_order(files), "lock-order", 1, 5)
    nested_ok = {
        "src/y/locks.cpp": (
            "void f() {\n"
            "  LockGuard a(alpha_);\n"
            "  { LockGuard b(beta_); }\n"
            "  LockGuard c(gamma_);\n"
            "}\n")}
    expect("lock-order clean", check_lock_order(nested_ok),
           "lock-order", 0, 5)
    scope_exit = {
        "src/y/locks.cpp": (
            "void f() {\n"
            "  { LockGuard a(alpha_); }\n"
            "  LockGuard b(beta_);\n"
            "}\n"
            "void g() {\n"
            "  { LockGuard b(beta_); }\n"
            "  LockGuard a(alpha_);\n"
            "}\n")}
    expect("lock-order scope-exit", check_lock_order(scope_exit),
           "lock-order", 0, 5)

    # lock-order, comm wait-path shape: the futures invariant is that the
    # mailbox lock is never held while taking a CommFutureState lock (the
    # wait side holds state->m_ and probes the mailbox; delivery holds the
    # mailbox mutex_ and must complete futures only after dropping it).
    # Seed the forbidden nesting on the delivery side and assert the cycle
    # fires; the real release-before-acquire shape must stay clean.
    comm_inverted = {
        "src/comm/communicator.cpp": (
            "void CommFuture::wait() {\n"
            "  LockGuard s(state_->m_);\n"
            "  LockGuard b(mailbox_.mutex_);\n"
            "}\n"
            "void World::deliver() {\n"
            "  LockGuard b(mailbox_.mutex_);\n"
            "  LockGuard s(state_->m_);\n"
            "}\n")}
    expect("lock-order comm seeded", check_lock_order(comm_inverted),
           "lock-order", 1, 5)
    comm_clean = {
        "src/comm/communicator.cpp": (
            "void CommFuture::wait() {\n"
            "  { LockGuard b(mailbox_.mutex_); }\n"
            "  LockGuard s(state_->m_);\n"
            "}\n"
            "void World::deliver() {\n"
            "  { LockGuard b(mailbox_.mutex_); }\n"
            "  LockGuard s(state_->m_);\n"
            "}\n")}
    expect("lock-order comm clean", check_lock_order(comm_clean),
           "lock-order", 0, 5)

    if failures:
        print(f"analyze_rshc selftest: {len(failures)} failure(s)")
        for f in failures:
            print(f"  {f}")
        return 1
    print("analyze_rshc selftest: ok (flag-recipe, atomic-ordering, "
          "lock-order all catch their seeded violations)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="mode")
    val = sub.add_parser("validate", help="run all rules on the tree")
    val.add_argument("--build-dir", type=Path, default=None,
                     help="build dir holding compile_commands.json "
                          "(default: <repo>/build; skipped if absent)")
    sub.add_parser("selftest", help="verify the rules catch seeded bugs")
    ns = parser.parse_args(argv)

    if ns.mode == "selftest":
        return selftest()
    build_dir = getattr(ns, "build_dir", None)
    return validate(build_dir or REPO / "build",
                    explicit_build_dir=build_dir is not None)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
