#!/usr/bin/env python3
"""Repo-specific lint rules for rshc that the generic tools cannot express.

Run from anywhere: paths are resolved relative to the repository root
(parent of tools/). Exit code 0 = clean, 1 = violations (printed as
file:line: [rule] message, one per line, grep/IDE friendly).

`lint_rshc.py selftest` runs the rules against seeded in-memory snippets
(each rule's positive and negative cases, including the nested-template
atomic declarations the old regex missed) and exits nonzero if any seeded
violation goes undetected or any clean snippet is flagged.

Rules
-----
float-keyed-map   std::map/std::unordered_map keyed on double/float anywhere
                  in the tree: floating-point keys on physical state make
                  lookups depend on bit-exact arithmetic and silently break
                  under FMA/vectorization differences between backends.
raw-new-solver    no raw `new`/`delete` inside solver code (src/solver,
                  include/rshc/solver): ownership there must go through
                  containers / unique_ptr so failure paths (c2p bailouts,
                  exceptions from task bodies) cannot leak.
atomic-ordering   every `std::atomic` *declaration* in library code
                  (include/, src/) carries a comment within the three
                  preceding lines (or on the line itself) naming the
                  intended memory ordering (relaxed / acquire / release /
                  acq_rel / seq_cst or the word "ordering"). The declaration
                  is where the synchronization design is documented; a bare
                  atomic invites "just use seq_cst" edits that hide races.
                  Tests/bench are exempt (ad-hoc seq_cst counters).
obs-raii-only     outside the obs module itself, spans and flow events may
                  only be emitted through the RAII/helper macros
                  (RSHC_OBS_PHASE / RSHC_TRACE_SCOPE / RSHC_OBS_FLOW_BEGIN /
                  RSHC_OBS_FLOW_END): direct Tracer::record_span/record_flow
                  or TraceScope/PhaseScope construction or bare
                  flow_begin/flow_end calls can unbalance span begin/end
                  across the task-graph's work-stealing boundaries, and
                  bypass the RSHC_OBS=OFF compile-out gate.
supp-justified    every active entry in tools/sanitizers/*.supp must be
                  directly preceded by a justification comment (see
                  tools/sanitizers/README.md for what it must contain).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

CPP_GLOBS = ("include/**/*.hpp", "src/**/*.hpp", "src/**/*.cpp",
             "tests/**/*.cpp", "bench/**/*.cpp", "bench/**/*.hpp",
             "examples/**/*.cpp")

SOLVER_DIRS = ("src/solver", "include/rshc/solver")

ORDERING_WORDS = re.compile(
    r"relaxed|acquire|release|acq_rel|seq_cst|ordering", re.IGNORECASE)

def atomic_object_decl(stripped: str) -> bool:
    """True when the (comment-stripped) line declares a std::atomic
    *object* — not a reference/pointer (parameters, return types) and not
    a using-alias. The template argument list is matched with a balanced
    angle-bracket scan, so nested templates like
    `std::atomic<std::shared_ptr<T>>` resolve to the right closer; the
    old `std::atomic<[^>]*>` regex stopped at the *first* `>` and silently
    skipped every nested declaration."""
    if "std::atomic" not in stripped or re.search(r"\busing\s", stripped):
        return False
    # Walk every template-id on the line (`name<...>` with balanced
    # brackets); one *containing* std::atomic covers both the direct form
    # and atomics nested inside an aggregate's argument list, e.g.
    # `std::array<std::atomic<T>, N> bins;`.
    for m in re.finditer(r"[\w:]+\s*<", stripped):
        depth = 1
        i = m.end()
        while i < len(stripped) and depth > 0:
            if stripped[i] == "<":
                depth += 1
            elif stripped[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            # Closer (and therefore any declared name) is on a later line;
            # multi-line atomic declarations do not occur in this tree.
            continue
        if "std::atomic" not in stripped[m.start():i]:
            continue
        rest = stripped[i:].lstrip()
        if rest[:1] in ("&", "*"):
            continue  # reference/pointer: parameter or return type
        if re.match(r"\w", rest):
            return True
    return False

FLOAT_MAP = re.compile(r"\b(?:std::)?(?:unordered_)?map\s*<\s*(?:double|float)\b")

RAW_NEW = re.compile(r"\bnew\b\s*[\w:<(]")
RAW_DELETE = re.compile(r"\bdelete\b(?:\s*\[\s*\])?\s+[\w:*(]")

OBS_DIRECT = re.compile(
    r"record_span\s*\(|record_flow\s*\(|\bobs::TraceScope\b|"
    r"\bobs::PhaseScope\b|\bTraceScope\s+\w+\s*\(|\bPhaseScope\s+\w+\s*\(|"
    r"\bflow_begin\s*\(|\bflow_end\s*\(")


def strip_comments_and_strings(line: str) -> str:
    """Best-effort single-line removal of string/char literals and //
    comments. Good enough for keyword rules; block comments are handled by
    the caller tracking state."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        ch = line[i]
        if in_str:
            if ch == "\\":
                i += 2
                continue
            if ch == in_str:
                in_str = None
            i += 1
            continue
        if ch in "\"'":
            in_str = ch
            i += 1
            continue
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(ch)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self) -> None:
        self.violations: list[str] = []

    def report(self, rel: str, lineno: int, rule: str, msg: str) -> None:
        self.violations.append(f"{rel}:{lineno}: [{rule}] {msg}")

    # -- per-file rules ---------------------------------------------------

    def lint_cpp(self, path: Path) -> None:
        self.lint_lines(str(path.relative_to(REPO)),
                        path.read_text(encoding="utf-8").splitlines())

    def lint_lines(self, rel: str, lines: list[str]) -> None:
        in_block_comment = False
        in_solver = any(rel.startswith(d) for d in SOLVER_DIRS)
        in_obs = "/obs/" in rel or rel.startswith("src/obs")
        in_tests = rel.startswith("tests/")

        for lineno, raw in enumerate(lines, start=1):
            line = raw
            # Track /* ... */ state so keyword rules skip commented code.
            code = []
            i = 0
            while i < len(line):
                if in_block_comment:
                    end = line.find("*/", i)
                    if end < 0:
                        i = len(line)
                    else:
                        in_block_comment = False
                        i = end + 2
                    continue
                start = line.find("/*", i)
                if start < 0:
                    code.append(line[i:])
                    break
                code.append(line[i:start])
                in_block_comment = True
                i = start + 2
            stripped = strip_comments_and_strings("".join(code))

            if FLOAT_MAP.search(stripped):
                self.report(rel, lineno, "float-keyed-map",
                            "map keyed on floating-point state; use an "
                            "integer or quantized key")

            if in_solver and (RAW_NEW.search(stripped)
                              or RAW_DELETE.search(stripped)):
                self.report(rel, lineno, "raw-new-solver",
                            "raw new/delete in solver code; use containers "
                            "or std::make_unique")

            in_library = rel.startswith("include/") or rel.startswith("src/")
            if in_library and atomic_object_decl(stripped):
                context = lines[max(0, lineno - 4):lineno]
                if not any(ORDERING_WORDS.search(c) for c in context):
                    self.report(rel, lineno, "atomic-ordering",
                                "std::atomic declaration without a memory-"
                                "ordering comment on or above it")

            if (not in_obs and not in_tests
                    and OBS_DIRECT.search(stripped)):
                self.report(rel, lineno, "obs-raii-only",
                            "emit obs spans/flows via RSHC_OBS_PHASE / "
                            "RSHC_TRACE_SCOPE / RSHC_OBS_FLOW_BEGIN / "
                            "RSHC_OBS_FLOW_END, not by direct calls")

    def lint_suppressions(self) -> None:
        for supp in sorted((REPO / "tools" / "sanitizers").glob("*.supp")):
            prev_comment = False
            for lineno, raw in enumerate(supp.read_text().splitlines(),
                                         start=1):
                line = raw.strip()
                if not line:
                    prev_comment = False
                    continue
                if line.startswith("#"):
                    prev_comment = True
                    continue
                if not prev_comment:
                    self.report(str(supp.relative_to(REPO)), lineno,
                                "supp-justified",
                                "suppression entry without a justification "
                                "comment directly above it")
                prev_comment = False

    # -- driver -----------------------------------------------------------

    def run(self) -> int:
        files = sorted({f for g in CPP_GLOBS for f in REPO.glob(g)})
        for f in files:
            self.lint_cpp(f)
        self.lint_suppressions()
        if self.violations:
            print(f"lint_rshc: {len(self.violations)} violation(s)")
            for v in self.violations:
                print(v)
            return 1
        print(f"lint_rshc: clean ({len(files)} files)")
        return 0


# -- selftest ---------------------------------------------------------------

# (rel-path, snippet, rule expected to fire or None for must-be-clean).
# The nested-template atomic cases are the regression suite for the
# balanced-angle-bracket scan: the old first-`>` regex missed all of them.
SELFTEST_CASES = [
    ("src/x/a.cpp",
     "std::atomic<int> hits;",
     "atomic-ordering"),
    ("src/x/a.cpp",
     "std::atomic<std::shared_ptr<Config>> cfg;",
     "atomic-ordering"),  # nested template: old regex never matched this
    ("src/x/a.cpp",
     "std::array<std::atomic<std::int64_t>, kNumBins> bins{};",
     "atomic-ordering"),  # atomic nested *inside* another template argument
    ("src/x/a.cpp",
     "// relaxed: counter, eventual visibility only\n"
     "std::atomic<std::shared_ptr<Config>> cfg;",
     None),
    ("src/x/a.cpp",
     "void f(std::atomic<std::shared_ptr<Config>>& cfg);",
     None),  # reference parameter, not a declaration
    ("src/x/a.cpp",
     "using AtomicCfg = std::atomic<std::shared_ptr<Config>>;",
     None),  # alias, not a declaration
    ("src/x/a.cpp",
     "// std::atomic<int> hits;",
     None),  # commented-out code must not fire
    ("tests/t.cpp",
     "std::atomic<int> hits;",
     None),  # tests are exempt from atomic-ordering
    ("src/x/a.cpp",
     "std::map<double, int> by_time;",
     "float-keyed-map"),
    ("src/solver/s.cpp",
     "auto* p = new double[n];",
     "raw-new-solver"),
    ("src/x/a.cpp",
     "auto* p = new double[n];",
     None),  # raw new is only banned inside solver code
    ("src/mesh/m.cpp",
     "obs::TraceScope scope(\"mesh.build\");",
     "obs-raii-only"),
    ("src/obs/trace.cpp",
     "record_span(name, cat, id, t0, t1);",
     None),  # the obs module itself implements the direct calls
]


def selftest() -> int:
    failures = []
    for idx, (rel, snippet, expected) in enumerate(SELFTEST_CASES):
        linter = Linter()
        linter.lint_lines(rel, snippet.splitlines())
        fired = sorted({v.split("[")[1].split("]")[0]
                        for v in linter.violations})
        if expected is None and fired:
            failures.append(f"case {idx} ({rel!r}): expected clean, "
                            f"fired {fired}")
        elif expected is not None and expected not in fired:
            failures.append(f"case {idx} ({rel!r}): expected [{expected}], "
                            f"fired {fired or 'nothing'}")
    if failures:
        print(f"lint_rshc selftest: {len(failures)} failure(s)")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"lint_rshc selftest: ok ({len(SELFTEST_CASES)} cases)")
    return 0


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "selftest":
        sys.exit(selftest())
    sys.exit(Linter().run())
