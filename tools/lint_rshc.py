#!/usr/bin/env python3
"""Repo-specific lint rules for rshc that the generic tools cannot express.

Run from anywhere: paths are resolved relative to the repository root
(parent of tools/). Exit code 0 = clean, 1 = violations (printed as
file:line: [rule] message, one per line, grep/IDE friendly).

Rules
-----
float-keyed-map   std::map/std::unordered_map keyed on double/float anywhere
                  in the tree: floating-point keys on physical state make
                  lookups depend on bit-exact arithmetic and silently break
                  under FMA/vectorization differences between backends.
raw-new-solver    no raw `new`/`delete` inside solver code (src/solver,
                  include/rshc/solver): ownership there must go through
                  containers / unique_ptr so failure paths (c2p bailouts,
                  exceptions from task bodies) cannot leak.
atomic-ordering   every `std::atomic` *declaration* in library code
                  (include/, src/) carries a comment within the three
                  preceding lines (or on the line itself) naming the
                  intended memory ordering (relaxed / acquire / release /
                  acq_rel / seq_cst or the word "ordering"). The declaration
                  is where the synchronization design is documented; a bare
                  atomic invites "just use seq_cst" edits that hide races.
                  Tests/bench are exempt (ad-hoc seq_cst counters).
obs-raii-only     outside the obs module itself, spans and flow events may
                  only be emitted through the RAII/helper macros
                  (RSHC_OBS_PHASE / RSHC_TRACE_SCOPE / RSHC_OBS_FLOW_BEGIN /
                  RSHC_OBS_FLOW_END): direct Tracer::record_span/record_flow
                  or TraceScope/PhaseScope construction or bare
                  flow_begin/flow_end calls can unbalance span begin/end
                  across the task-graph's work-stealing boundaries, and
                  bypass the RSHC_OBS=OFF compile-out gate.
supp-justified    every active entry in tools/sanitizers/*.supp must be
                  directly preceded by a justification comment (see
                  tools/sanitizers/README.md for what it must contain).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

CPP_GLOBS = ("include/**/*.hpp", "src/**/*.hpp", "src/**/*.cpp",
             "tests/**/*.cpp", "bench/**/*.cpp", "bench/**/*.hpp",
             "examples/**/*.cpp")

SOLVER_DIRS = ("src/solver", "include/rshc/solver")

ORDERING_WORDS = re.compile(
    r"relaxed|acquire|release|acq_rel|seq_cst|ordering", re.IGNORECASE)

# An atomic *object* declaration: `std::atomic<T> name...` — not a
# reference/pointer (parameters, return types) and not a using-alias.
ATOMIC_DECL = re.compile(r"std::atomic<[^>]*>\s+\w")
ATOMIC_NON_DECL = re.compile(r"std::atomic<[^>]*>\s*[&*]|using\s")

FLOAT_MAP = re.compile(r"\b(?:std::)?(?:unordered_)?map\s*<\s*(?:double|float)\b")

RAW_NEW = re.compile(r"\bnew\b\s*[\w:<(]")
RAW_DELETE = re.compile(r"\bdelete\b(?:\s*\[\s*\])?\s+[\w:*(]")

OBS_DIRECT = re.compile(
    r"record_span\s*\(|record_flow\s*\(|\bobs::TraceScope\b|"
    r"\bobs::PhaseScope\b|\bTraceScope\s+\w+\s*\(|\bPhaseScope\s+\w+\s*\(|"
    r"\bflow_begin\s*\(|\bflow_end\s*\(")


def strip_comments_and_strings(line: str) -> str:
    """Best-effort single-line removal of string/char literals and //
    comments. Good enough for keyword rules; block comments are handled by
    the caller tracking state."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        ch = line[i]
        if in_str:
            if ch == "\\":
                i += 2
                continue
            if ch == in_str:
                in_str = None
            i += 1
            continue
        if ch in "\"'":
            in_str = ch
            i += 1
            continue
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(ch)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self) -> None:
        self.violations: list[str] = []

    def report(self, path: Path, lineno: int, rule: str, msg: str) -> None:
        rel = path.relative_to(REPO)
        self.violations.append(f"{rel}:{lineno}: [{rule}] {msg}")

    # -- per-file rules ---------------------------------------------------

    def lint_cpp(self, path: Path) -> None:
        rel = str(path.relative_to(REPO))
        lines = path.read_text(encoding="utf-8").splitlines()
        in_block_comment = False
        in_solver = any(rel.startswith(d) for d in SOLVER_DIRS)
        in_obs = "/obs/" in rel or rel.startswith("src/obs")
        in_tests = rel.startswith("tests/")

        for lineno, raw in enumerate(lines, start=1):
            line = raw
            # Track /* ... */ state so keyword rules skip commented code.
            code = []
            i = 0
            while i < len(line):
                if in_block_comment:
                    end = line.find("*/", i)
                    if end < 0:
                        i = len(line)
                    else:
                        in_block_comment = False
                        i = end + 2
                    continue
                start = line.find("/*", i)
                if start < 0:
                    code.append(line[i:])
                    break
                code.append(line[i:start])
                in_block_comment = True
                i = start + 2
            stripped = strip_comments_and_strings("".join(code))

            if FLOAT_MAP.search(stripped):
                self.report(path, lineno, "float-keyed-map",
                            "map keyed on floating-point state; use an "
                            "integer or quantized key")

            if in_solver and (RAW_NEW.search(stripped)
                              or RAW_DELETE.search(stripped)):
                self.report(path, lineno, "raw-new-solver",
                            "raw new/delete in solver code; use containers "
                            "or std::make_unique")

            in_library = rel.startswith("include/") or rel.startswith("src/")
            if (in_library and ATOMIC_DECL.search(stripped)
                    and not ATOMIC_NON_DECL.search(stripped)):
                context = lines[max(0, lineno - 4):lineno]
                if not any(ORDERING_WORDS.search(c) for c in context):
                    self.report(path, lineno, "atomic-ordering",
                                "std::atomic declaration without a memory-"
                                "ordering comment on or above it")

            if (not in_obs and not in_tests
                    and OBS_DIRECT.search(stripped)):
                self.report(path, lineno, "obs-raii-only",
                            "emit obs spans/flows via RSHC_OBS_PHASE / "
                            "RSHC_TRACE_SCOPE / RSHC_OBS_FLOW_BEGIN / "
                            "RSHC_OBS_FLOW_END, not by direct calls")

    def lint_suppressions(self) -> None:
        for supp in sorted((REPO / "tools" / "sanitizers").glob("*.supp")):
            prev_comment = False
            for lineno, raw in enumerate(supp.read_text().splitlines(),
                                         start=1):
                line = raw.strip()
                if not line:
                    prev_comment = False
                    continue
                if line.startswith("#"):
                    prev_comment = True
                    continue
                if not prev_comment:
                    self.report(supp, lineno, "supp-justified",
                                "suppression entry without a justification "
                                "comment directly above it")
                prev_comment = False

    # -- driver -----------------------------------------------------------

    def run(self) -> int:
        files = sorted({f for g in CPP_GLOBS for f in REPO.glob(g)})
        for f in files:
            self.lint_cpp(f)
        self.lint_suppressions()
        if self.violations:
            print(f"lint_rshc: {len(self.violations)} violation(s)")
            for v in self.violations:
                print(v)
            return 1
        print(f"lint_rshc: clean ({len(files)} files)")
        return 0


if __name__ == "__main__":
    sys.exit(Linter().run())
